"""Indexes over relations.

Two index families are provided, matching the two ways WCOJ engines satisfy
the paper's single algorithmic assumption ("we can loop through the
intersection of two sets X and Y in time O(min(|X|, |Y|))", Section 2):

* :class:`HashIndex` — a hash map from key-attribute values to the set of
  matching tuples.  Intersections iterate the smaller set and probe the
  other, as in hash-based Generic-Join.
* :class:`TrieIndex` — a sorted nested-dictionary trie over a fixed
  attribute order, exposing sorted value lists per prefix.  This is the
  storage layout assumed by Leapfrog Triejoin.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation

Value = Any


class HashIndex:
    """Hash index on a relation keyed by a subset of its attributes.

    Parameters
    ----------
    relation:
        The indexed relation.
    key:
        Attribute names forming the key.  May be empty, in which case the
        index has a single bucket containing every tuple.

    The index maps each distinct key-value combination to the frozenset of
    full tuples sharing it.
    """

    __slots__ = ("_relation", "_key", "_buckets")

    def __init__(self, relation: Relation, key: Sequence[str]):
        self._relation = relation
        self._key = tuple(key)
        positions = relation.schema.positions(self._key)
        buckets: dict[tuple, set] = {}
        for t in relation:
            k = tuple(t[p] for p in positions)
            buckets.setdefault(k, set()).add(t)
        self._buckets = {k: frozenset(v) for k, v in buckets.items()}

    @property
    def relation(self) -> Relation:
        """The indexed relation."""
        return self._relation

    @property
    def key(self) -> tuple[str, ...]:
        """The key attributes."""
        return self._key

    def lookup(self, key_values: Sequence[Value]) -> frozenset[tuple]:
        """All tuples whose key attributes equal ``key_values``."""
        return self._buckets.get(tuple(key_values), frozenset())

    def lookup_dict(self, bindings: Mapping[str, Value]) -> frozenset[tuple]:
        """Like :meth:`lookup`, but the key is given as attr -> value."""
        key_values = tuple(bindings[a] for a in self._key)
        return self._buckets.get(key_values, frozenset())

    def contains(self, key_values: Sequence[Value]) -> bool:
        """True if any tuple matches ``key_values``."""
        return tuple(key_values) in self._buckets

    def count(self, key_values: Sequence[Value]) -> int:
        """Number of tuples matching ``key_values``."""
        return len(self._buckets.get(tuple(key_values), ()))

    def keys(self) -> Iterable[tuple]:
        """All distinct key combinations present."""
        return self._buckets.keys()

    def max_bucket_size(self) -> int:
        """The largest number of tuples sharing a key (0 for empty index)."""
        if not self._buckets:
            return 0
        return max(len(v) for v in self._buckets.values())

    def __len__(self) -> int:
        return len(self._buckets)


class TrieNode:
    """A node of a :class:`TrieIndex`: sorted children keyed by value."""

    __slots__ = ("children", "sorted_keys", "count")

    def __init__(self) -> None:
        self.children: dict[Value, "TrieNode"] = {}
        self.sorted_keys: list[Value] = []
        self.count: int = 0

    def freeze(self) -> None:
        """Sort child keys (called once after construction) and recurse."""
        self.sorted_keys = sorted(self.children.keys())
        for child in self.children.values():
            child.freeze()


class TrieIndex:
    """Sorted trie over a relation in a fixed attribute order.

    The trie has one level per attribute of ``order``; a path from the root
    to depth k spells out a binding of the first k attributes, and the node
    reached stores the sorted list of values the (k+1)-st attribute takes
    among matching tuples.  This is the data layout used by Leapfrog Triejoin
    and by the backtracking-search algorithm (Algorithm 3).

    Parameters
    ----------
    relation:
        The relation to index.
    order:
        Attribute order for trie levels.  Must be a subset (usually all) of
        the relation's attributes; tuples are first projected onto ``order``.
    """

    __slots__ = ("_relation", "_order", "_root")

    def __init__(self, relation: Relation, order: Sequence[str]):
        self._relation = relation
        self._order = tuple(order)
        for attr in self._order:
            if attr not in relation.schema:
                raise SchemaError(
                    f"attribute {attr!r} not in relation {relation.name!r} "
                    f"schema {relation.attributes}"
                )
        positions = relation.schema.positions(self._order)
        root = TrieNode()
        for t in relation:
            node = root
            node.count += 1
            for p in positions:
                value = t[p]
                child = node.children.get(value)
                if child is None:
                    child = TrieNode()
                    node.children[value] = child
                child.count += 1
                node = child
        root.freeze()
        self._root = root

    @property
    def relation(self) -> Relation:
        """The indexed relation."""
        return self._relation

    @property
    def order(self) -> tuple[str, ...]:
        """The attribute order of the trie levels."""
        return self._order

    def _node(self, prefix: Sequence[Value]) -> TrieNode | None:
        node = self._root
        for value in prefix:
            node = node.children.get(value)
            if node is None:
                return None
        return node

    def values(self, prefix: Sequence[Value] = ()) -> list[Value]:
        """Sorted distinct values at the level after ``prefix``.

        ``prefix`` binds the first ``len(prefix)`` attributes of the trie
        order; an unknown prefix yields an empty list.
        """
        node = self._node(prefix)
        if node is None:
            return []
        return node.sorted_keys

    def count(self, prefix: Sequence[Value] = ()) -> int:
        """Number of (projected) tuples extending ``prefix``."""
        node = self._node(prefix)
        return 0 if node is None else node.count

    def num_children(self, prefix: Sequence[Value] = ()) -> int:
        """Number of distinct next-level values under ``prefix``."""
        node = self._node(prefix)
        return 0 if node is None else len(node.sorted_keys)

    def contains_prefix(self, prefix: Sequence[Value]) -> bool:
        """True if some tuple extends ``prefix``."""
        return self._node(prefix) is not None

    def seek(self, prefix: Sequence[Value], lower_bound: Value) -> Value | None:
        """Least next-level value >= ``lower_bound`` under ``prefix``.

        This is the primitive Leapfrog Triejoin uses for galloping; returns
        ``None`` when no such value exists.
        """
        node = self._node(prefix)
        if node is None:
            return None
        keys = node.sorted_keys
        i = bisect.bisect_left(keys, lower_bound)
        if i >= len(keys):
            return None
        return keys[i]


def build_tries(relations: Iterable[Relation], global_order: Sequence[str]
                ) -> dict[str, TrieIndex]:
    """Build a trie per relation, each ordered consistently with ``global_order``.

    The per-relation attribute order is the restriction of the global
    variable order to the relation's attributes, which is the precondition
    Leapfrog Triejoin requires of its inputs.
    """
    tries = {}
    for rel in relations:
        order = [a for a in global_order if a in rel.schema]
        remaining = [a for a in rel.attributes if a not in order]
        tries[rel.name] = TrieIndex(rel, order + remaining)
    return tries
