"""The :class:`Database` catalog: a named collection of relations.

A database instance ``D`` in the paper is an assignment of a concrete
relation to every atom of the query.  Here the catalog maps relation names to
:class:`Relation` objects and offers convenience accessors plus overall size
statistics (``|D|`` = total number of tuples, the data-size term every WCOJ
runtime bound carries).

Each registered name also carries a monotonically increasing *version*
number, bumped every time the name is (re)bound to a relation.  Relations
themselves are immutable, so ``(name, version)`` pins down the exact tuple
set a name referred to at some point in time — the hook the query engine's
index registry and result cache use to reuse work safely across queries and
invalidate it on mutation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.relation import Relation


class Database:
    """A catalog of relations indexed by name.

    Parameters
    ----------
    relations:
        Relations to register.  Names must be unique.
    """

    __slots__ = ("_relations", "_versions")

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        self._versions: dict[str, int] = {}
        for rel in relations:
            self.add(rel)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Relation]) -> "Database":
        """Build a database from a name -> relation mapping.

        Each relation is re-registered under the mapping key (renaming it if
        its own name differs), which is convenient when binding the same
        physical relation to several query atoms.
        """
        db = cls()
        for name, rel in mapping.items():
            db.add(rel.with_name(name) if rel.name != name else rel)
        return db

    def add(self, relation: Relation) -> None:
        """Register a relation; raises if the name is already used."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already registered")
        self._relations[relation.name] = relation
        self._versions[relation.name] = self._versions.get(relation.name, 0) + 1

    def replace(self, relation: Relation) -> None:
        """Register a relation, overwriting any existing one with that name."""
        self._relations[relation.name] = relation
        self._versions[relation.name] = self._versions.get(relation.name, 0) + 1

    def version(self, name: str) -> int:
        """The mutation version of ``name``: bumped on every add/replace.

        Indexes and cached results derived from a relation are valid exactly
        as long as the stored version matches; 0 means "never registered".
        """
        return self._versions.get(name, 0)

    def get(self, name: str) -> Relation:
        """Return the relation registered under ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r} in database") from None

    def __getitem__(self, name: str) -> Relation:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of all registered relations."""
        return tuple(self._relations.keys())

    def total_tuples(self) -> int:
        """``|D|``: the total number of tuples across all relations."""
        return sum(len(r) for r in self._relations.values())

    def max_relation_size(self) -> int:
        """``N = max_F |R_F|``, the largest relation size (0 if empty)."""
        if not self._relations:
            return 0
        return max(len(r) for r in self._relations.values())

    def active_domain(self) -> set:
        """Union of the active domains of all relations."""
        domain: set = set()
        for rel in self._relations.values():
            domain.update(rel.active_domain())
        return domain

    def summary(self) -> dict[str, int]:
        """Mapping of relation name to cardinality (for reports/logs)."""
        return {name: len(rel) for name, rel in self._relations.items()}
