"""The :class:`Database` catalog: a named collection of relations.

A database instance ``D`` in the paper is an assignment of a concrete
relation to every atom of the query.  Here the catalog maps relation names to
:class:`Relation` objects and offers convenience accessors plus overall size
statistics (``|D|`` = total number of tuples, the data-size term every WCOJ
runtime bound carries).

Each registered name also carries a monotonically increasing *version*
number, bumped every time the name is (re)bound to a relation.  Relations
themselves are immutable, so ``(name, version)`` pins down the exact tuple
set a name referred to at some point in time — the hook the query engine's
index registry and result cache use to reuse work safely across queries and
invalidate it on mutation.

Mutation comes in two granularities.  Whole-relation rebinding
(:meth:`Database.replace`, :meth:`Database.remove`) swaps or drops the
binding and bumps the version.  Tuple-level deltas
(:meth:`Database.apply_delta`) apply a batch of inserts and deletes as one
atomic step — **exactly one** version bump per effective batch, none when
the batch is a no-op under set semantics — and report the *effective*
delta (what actually changed) as an :class:`AppliedDelta`, which is what
incremental view maintenance propagates through join-tree messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError
from repro.relational.relation import Relation


@dataclass(frozen=True)
class AppliedDelta:
    """The effective result of one :meth:`Database.apply_delta` batch.

    ``inserted`` / ``deleted`` hold only the tuples that actually changed
    membership (requested inserts already present, deletes of absent
    tuples, and insert+delete of the same new tuple within one batch all
    normalize away), and ``version`` is the relation's version *after* the
    batch — unchanged when the batch was a no-op.
    """

    name: str
    inserted: frozenset
    deleted: frozenset
    version: int

    @property
    def changed(self) -> bool:
        """True when the batch changed the relation's tuple set."""
        return bool(self.inserted or self.deleted)


class Database:
    """A catalog of relations indexed by name.

    Parameters
    ----------
    relations:
        Relations to register.  Names must be unique.
    """

    __slots__ = ("_relations", "_versions")

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        self._versions: dict[str, int] = {}
        for rel in relations:
            self.add(rel)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Relation]) -> "Database":
        """Build a database from a name -> relation mapping.

        Each relation is re-registered under the mapping key (renaming it if
        its own name differs), which is convenient when binding the same
        physical relation to several query atoms.
        """
        db = cls()
        for name, rel in mapping.items():
            db.add(rel.with_name(name) if rel.name != name else rel)
        return db

    def add(self, relation: Relation) -> None:
        """Register a relation; raises if the name is already used."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already registered")
        self._relations[relation.name] = relation
        self._versions[relation.name] = self._versions.get(relation.name, 0) + 1

    def replace(self, relation: Relation) -> None:
        """Register a relation, overwriting any existing one with that name."""
        self._relations[relation.name] = relation
        self._versions[relation.name] = self._versions.get(relation.name, 0) + 1

    def remove(self, name: str) -> None:
        """Drop the relation bound to ``name``; raises if absent.

        The version history survives the removal (and is bumped), so a
        later re-``add`` continues the sequence instead of restarting at
        1 — cached work keyed on an old ``(name, version)`` can never be
        confused with the re-registered relation's contents.
        """
        if name not in self._relations:
            raise SchemaError(f"no relation named {name!r} in database")
        del self._relations[name]
        self._versions[name] += 1

    def apply_delta(self, name: str, inserts: Iterable[tuple] = (),
                    deletes: Iterable[tuple] = ()) -> AppliedDelta:
        """Apply a batch of tuple inserts and deletes atomically.

        The batch is normalized to its *effective* delta under set
        semantics: inserts already present and deletes of absent tuples
        drop out, and a tuple both inserted and deleted in the same batch
        nets to a delete (deletes win).  The version is bumped exactly
        once per effective batch and not at all for a no-op, mirroring
        the engine's idempotent-insert convention.
        """
        old = self.get(name)
        requested_inserts = {tuple(row) for row in inserts}
        requested_deletes = {tuple(row) for row in deletes}
        inserted = frozenset(requested_inserts - old.tuples - requested_deletes)
        deleted = frozenset(requested_deletes & old.tuples)
        if not inserted and not deleted:
            return AppliedDelta(name, inserted, deleted, self.version(name))
        updated = Relation(name, old.schema, (old.tuples | inserted) - deleted)
        self._relations[name] = updated
        self._versions[name] += 1
        return AppliedDelta(name, inserted, deleted, self._versions[name])

    def version(self, name: str) -> int:
        """The mutation version of ``name``: bumped on every add/replace.

        Indexes and cached results derived from a relation are valid exactly
        as long as the stored version matches; 0 means "never registered".
        """
        return self._versions.get(name, 0)

    def get(self, name: str) -> Relation:
        """Return the relation registered under ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r} in database") from None

    def __getitem__(self, name: str) -> Relation:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Names of all registered relations."""
        return tuple(self._relations.keys())

    def total_tuples(self) -> int:
        """``|D|``: the total number of tuples across all relations."""
        return sum(len(r) for r in self._relations.values())

    def max_relation_size(self) -> int:
        """``N = max_F |R_F|``, the largest relation size (0 if empty)."""
        if not self._relations:
            return 0
        return max(len(r) for r in self._relations.values())

    def active_domain(self) -> set:
        """Union of the active domains of all relations."""
        domain: set = set()
        for rel in self._relations.values():
            domain.update(rel.active_domain())
        return domain

    def summary(self) -> dict[str, int]:
        """Mapping of relation name to cardinality (for reports/logs)."""
        return {name: len(rel) for name, rel in self._relations.items()}
