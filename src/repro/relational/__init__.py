"""Relational storage and algebra substrate.

This subpackage implements the "database engine" the paper assumes as given:
relations with named attributes, hash and trie indexes whose intersections
run in time proportional to the smaller argument, the classical relational
algebra operators, and the statistics extraction (cardinalities and degrees)
needed to state degree constraints.
"""

from repro.relational.schema import Schema
from repro.relational.relation import Relation
from repro.relational.database import AppliedDelta, Database
from repro.relational.index import HashIndex, TrieIndex
from repro.relational.operators import (
    select,
    project,
    rename,
    natural_join,
    semijoin,
    union,
    difference,
    intersect_sorted,
    cartesian_product,
)
from repro.relational.statistics import (
    cardinality,
    database_statistics,
    degree,
    max_degree,
    relation_statistics,
    size_bucket,
    statistics_fingerprint,
)

__all__ = [
    "Schema",
    "Relation",
    "AppliedDelta",
    "Database",
    "HashIndex",
    "TrieIndex",
    "select",
    "project",
    "rename",
    "natural_join",
    "semijoin",
    "union",
    "difference",
    "intersect_sorted",
    "cartesian_product",
    "cardinality",
    "database_statistics",
    "degree",
    "max_degree",
    "relation_statistics",
    "size_bucket",
    "statistics_fingerprint",
]
