"""Command-line entry point: run experiments or serve queries from a shell.

Usage::

    repro list                 # list available experiments
    repro table1               # run one experiment and print its table
    repro all                  # run every experiment
    repro triangle --sizes 100 200 400 --family skew

    # The persistent query engine (build once, query many times):
    repro engine --demo triangle-skew --size 400 --explain
    repro engine --relation E=edges.csv -q "Q(A,B,C) :- E(A,B), E(B,C), E(A,C)"
    repro engine --demo lw4 --query-file queries.txt --repeat 3 --mode auto

    # The unified query surface: constants, selections, aggregates,
    # ordered top-k (any-k ranked enumeration stops the join after k
    # results; see --ranked-mode); machine-consumable output via
    # --format json / --format csv:
    repro engine --relation E=edges.csv -q "Q(A) :- E(A,B), E(B,5), A < B"
    repro engine --relation E=edges.csv -q "Q(A, COUNT(*)) :- E(A,B)" --format json
    repro engine --relation E=edges.csv \\
        -q "Q(A,B) :- E(A,B) ORDER BY B DESC LIMIT 10" --ranked-mode anyk

    # Standing queries: subscribe, then stream tuple deltas through the
    # incremental-view-maintenance path (each batch re-prints the
    # refreshed result):
    repro engine --relation R=r.csv --relation S=s.csv \\
        -q "Q(A, SUM(B) AS total) :- R(A,B), S(A,C)" \\
        --subscribe --delta "R:+1,10" --delta "R:-2,20;+3,30"

    # Observability: span traces, cost-model calibration, metrics:
    repro engine --demo triangle-skew --trace trace.ndjson --repeat 2
    repro engine --demo triangle-skew --profile
    repro engine --demo triangle-skew --metrics

(``python -m repro ...`` works identically when the package is not
installed.)  Experiments print the same tables the benchmark harness embeds,
so this is the quickest way to regenerate a single paper artifact without
pytest.  The ``engine`` subcommand is a batch REPL over one
:class:`repro.engine.Engine` session: all queries share its plan cache,
index registry and result cache, and ``--repeat`` demonstrates warm-cache
serving on repeated workloads.
"""

from __future__ import annotations

import argparse
import csv
import heapq
import sys
import time
from typing import Callable

from repro.errors import ReproError
from repro.experiments import (
    run_acyclic_dc,
    run_acyclify,
    run_bound_lps,
    run_example1_experiment,
    run_inequalities,
    run_loomis_whitney,
    run_table1,
    run_table2,
    run_tightness,
    run_triangle_bounds,
    run_triangle_scaling,
)
from repro.experiments.runner import ExperimentTable

# Registry: name -> (description, runner taking the parsed args).
_EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], ExperimentTable]]] = {
    "table1": ("Table 1: bound taxonomy",
               lambda args: run_table1()),
    "table2": ("Table 2: PANDA proof sequence for Example 1",
               lambda args: run_table2(scale=args.scale)),
    "triangle-bounds": ("AGM LP regimes for the triangle (E3)",
                        lambda args: run_triangle_bounds()),
    "triangle": ("Triangle scaling: WCOJ vs pairwise (E4)",
                 lambda args: run_triangle_scaling(sizes=tuple(args.sizes),
                                                   family=args.family)),
    "loomis-whitney": ("Loomis-Whitney separation (E5)",
                       lambda args: run_loomis_whitney(sizes=tuple(args.sizes))),
    "acyclic-dc": ("Algorithm 3 vs Theorem 5.1 bound (E6)",
                   lambda args: run_acyclic_dc(sizes=tuple(args.sizes))),
    "example1": ("PANDA on Example 1 vs bound (75) (E7)",
                 lambda args: run_example1_experiment(scales=tuple(args.sizes))),
    "bound-lps": ("Modular vs polymatroid LPs (E8)",
                  lambda args: run_bound_lps()),
    "acyclify": ("Constraint acyclification (E9)",
                 lambda args: run_acyclify()),
    "inequalities": ("Shearer / Friedgut / Zhang-Yeung (E10)",
                     lambda args: run_inequalities()),
    "tightness": ("AGM tightness (E11)",
                  lambda args: run_tightness()),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the experiment argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Worst-Case Optimal Join "
                    "Algorithms' (Ngo, PODS 2018). Use the 'engine' "
                    "subcommand for the persistent query engine.",
    )
    parser.add_argument("experiment",
                        help="experiment name, 'all', or 'list' (the query "
                             "engine is 'repro engine ...', with 'engine' "
                             "as the first argument)")
    parser.add_argument("--sizes", type=int, nargs="+", default=[100, 200, 400],
                        help="instance-size sweep for scaling experiments")
    parser.add_argument("--scale", type=int, default=150,
                        help="instance scale for the Table 2 / Example 1 run")
    parser.add_argument("--family", choices=("skew", "agm_tight"), default="skew",
                        help="instance family for the triangle scaling experiment")
    return parser


def build_engine_parser() -> argparse.ArgumentParser:
    """Build the ``engine`` subcommand parser (exposed for testing)."""
    from repro.engine import AGGREGATE_MODES, BACKENDS, MODES, RANKED_MODES

    parser = argparse.ArgumentParser(
        prog="repro engine",
        description="Serve conjunctive queries from a persistent engine "
                    "session with a plan cache, an index registry, and "
                    "cost-based algorithm dispatch.",
    )
    data = parser.add_argument_group("data sources")
    data.add_argument("--demo",
                      choices=("triangle-skew", "triangle-tight", "triangle-zipf",
                               "lw4", "clique4"),
                      help="load a built-in instance family instead of files")
    data.add_argument("--size", type=int, default=200,
                      help="scale parameter for --demo instances")
    data.add_argument("--relation", action="append", default=[],
                      metavar="NAME=FILE.csv",
                      help="load a relation from a CSV file whose header row "
                           "names the attributes (repeatable)")
    workload = parser.add_argument_group("workload")
    workload.add_argument("-q", "--query", action="append", default=[],
                          help="a datalog-style query, e.g. "
                               "'Q(A,B,C) :- R(A,B), S(B,C), T(A,C)' "
                               "(repeatable)")
    workload.add_argument("--query-file",
                          help="file with one query per line ('#' comments)")
    workload.add_argument("--repeat", type=int, default=1,
                          help="run the whole workload this many times "
                               "(repetitions exercise the caches)")
    workload.add_argument("--subscribe", action="store_true",
                          help="register each query as a standing query "
                               "(incremental view maintenance) instead of "
                               "running it once; results re-print after "
                               "every --delta batch")
    workload.add_argument("--delta", action="append", default=[],
                          metavar="NAME:+1,2;-3,4",
                          help="apply a tuple delta batch to relation NAME "
                               "after the subscriptions materialize: "
                               "';'-separated signed tuples, '+' inserts "
                               "and '-' deletes (repeatable; requires "
                               "--subscribe)")
    execution = parser.add_argument_group("execution")
    execution.add_argument("--mode", default="auto", choices=MODES,
                           help="executor dispatch mode")
    execution.add_argument("--aggregate-mode", default="auto",
                           choices=AGGREGATE_MODES, dest="aggregate_mode",
                           help="aggregate execution: 'recursion' folds "
                                "eliminated variables inside the join "
                                "(FAQ-style), 'fold' drains the join and "
                                "folds its output, 'auto' prices both")
    execution.add_argument("--ranked-mode", default="auto",
                           choices=RANKED_MODES, dest="ranked_mode",
                           help="ORDER BY execution: 'anyk' enumerates "
                                "results in rank order out of the join "
                                "itself (stops after LIMIT results), "
                                "'drain' enumerates the join and "
                                "heap-selects the top-k, 'auto' prices "
                                "both (queries may carry 'ORDER BY col "
                                "[DESC] ... LIMIT k' trailers)")
    execution.add_argument("--backend", default="python", choices=BACKENDS,
                           help="physical execution backend: 'python' "
                                "(reference tuple-at-a-time), 'columnar' "
                                "(sorted NumPy layouts with galloping "
                                "intersection; transparently falls back "
                                "when unsupported), 'auto' prices both — "
                                "results are identical either way")
    execution.add_argument("--limit", type=int, default=None,
                           help="stop each query after this many tuples "
                                "(pushed into the join recursion; applied "
                                "after ordering for ORDER BY queries)")
    execution.add_argument("--explain", action="store_true",
                           help="print the chosen plan, AGM bound, and "
                                "cache provenance before each query")
    execution.add_argument("--show", type=int, default=3,
                           help="sample result rows to print per query "
                                "(table format only)")
    output = parser.add_argument_group("output")
    output.add_argument("--format", choices=("table", "json", "csv"),
                        default="table", dest="format",
                        help="result format; json/csv print every result "
                             "row to stdout (machine-consumable) and move "
                             "the session chatter to stderr")
    observability = parser.add_argument_group("observability")
    observability.add_argument("--trace", metavar="FILE", dest="trace",
                               help="record query-lifecycle spans and write "
                                    "them to FILE as NDJSON at session end")
    observability.add_argument("--profile", action="store_true",
                               help="after each query's first run, execute "
                                    "it under every priced strategy and "
                                    "print the cost-model calibration table "
                                    "(predicted envelope vs measured "
                                    "operations)")
    observability.add_argument("--metrics", action="store_true",
                               help="print the session's metrics registry "
                                    "in Prometheus text exposition format "
                                    "at session end")
    return parser


def _coerce_rows(rows: list[tuple[str, ...]]) -> list[tuple]:
    """Convert a relation's cells to int only when *every* cell round-trips
    (``str(int(cell)) == cell``); otherwise the whole relation stays textual.

    The granularity matters: per-cell conversion produces mixed int/str
    columns (TypeError from sorting), and per-column conversion can leave
    one column int and another str, making any join variable that spans
    both silently empty.  All-or-nothing per relation keeps every value of
    a relation in one comparable domain.  Coercing cells that merely
    *parse* as int would silently merge distinct rows like ``1,2`` and
    ``01,2`` under set semantics, hence the round-trip requirement.
    """
    try:
        coerced = [tuple(int(cell) for cell in row) for row in rows]
    except ValueError:
        return list(rows)
    for row, ints in zip(rows, coerced):
        if any(str(i) != cell for cell, i in zip(row, ints)):
            return list(rows)
    return coerced


def _load_csv_relation(spec: str):
    """Load ``NAME=path.csv`` (header row = attribute names) as a Relation."""
    from repro.relational.relation import Relation

    if "=" not in spec:
        raise ValueError(
            f"--relation expects NAME=FILE.csv, got {spec!r}"
        )
    name, path = spec.split("=", 1)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"relation file {path!r} is empty") from None
        attributes = [a.strip() for a in header]
        rows = []
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(attributes):
                raise ValueError(
                    f"{path}:{line_number}: row has {len(row)} cells, "
                    f"expected {len(attributes)} (header {attributes})"
                )
            rows.append(tuple(cell.strip() for cell in row))
    return Relation(name.strip(), attributes, _coerce_rows(rows))


def _parse_delta(spec: str) -> tuple[str, list[tuple], list[tuple]]:
    """Parse ``NAME:+1,2;-3,4`` into (name, inserts, deletes).

    Signed tuples are ';'-separated; cells follow the same all-or-nothing
    int coercion as CSV relations (:func:`_coerce_rows`), applied across
    the whole batch so inserts and deletes stay in one value domain.
    """
    if ":" not in spec:
        raise ValueError(
            f"--delta expects NAME:+v1,v2;-v1,v2, got {spec!r}"
        )
    name, body = spec.split(":", 1)
    inserts: list[tuple] = []
    deletes: list[tuple] = []
    for part in body.split(";"):
        part = part.strip()
        if not part:
            continue
        sign, cells = part[0], part[1:]
        if sign not in "+-" or not cells.strip():
            raise ValueError(
                f"delta tuple {part!r} must be '+v1,v2' or '-v1,v2'"
            )
        row = tuple(cell.strip() for cell in cells.split(","))
        (inserts if sign == "+" else deletes).append(row)
    if not inserts and not deletes:
        raise ValueError(f"--delta batch {spec!r} holds no tuples")
    coerced = _coerce_rows(inserts + deletes)
    return name.strip(), coerced[:len(inserts)], coerced[len(inserts):]


def _demo_instance(demo: str, size: int):
    """A (database, default queries) pair for a built-in demo family."""
    from repro.datagen.loomis_whitney import loomis_whitney_random_instance
    from repro.datagen.worstcase import (
        clique_agm_tight_instance,
        triangle_agm_tight_instance,
        triangle_skew_instance,
    )

    if demo == "triangle-skew":
        query, database = triangle_skew_instance(size)
    elif demo == "triangle-tight":
        query, database = triangle_agm_tight_instance(size)
    elif demo == "triangle-zipf":
        from repro.datagen.graphs import zipf_triangle_instance

        query, database = zipf_triangle_instance(size, skew=1.5, seed=0)
    elif demo == "lw4":
        query, database = loomis_whitney_random_instance(4, size, seed=0)
    elif demo == "clique4":
        query, database = clique_agm_tight_instance(4, size)
    else:  # pragma: no cover - argparse choices prevent this
        raise ValueError(f"unknown demo {demo!r}")
    return database, [query]


def _mixed_type_variables(query, database) -> list[str]:
    """Join variables whose columns mix value types (e.g. int vs str).

    Such joins can never match (and crash the sorted-merge engines), so the
    CLI reports them upfront — the diagnostic must not depend on which
    executor the cost model happens to pick.  Rich queries are checked on
    their lowered conjunctive core (fresh constant-bound variables
    included: a constant that can never match is merely empty, not an
    error).
    """
    query.validate_against(database)  # arity errors first, with their own message
    if hasattr(query, "core"):  # rich Query -> its variables-only core
        query = query.core
    kinds: dict[str, set[str]] = {}
    for atom in query.atoms:
        relation = database.get(atom.relation)
        for position, variable in enumerate(atom.variables):
            column_kinds = {type(t[position]).__name__ for t in relation.tuples}
            kinds.setdefault(variable, set()).update(column_kinds)
    return sorted(v for v, k in kinds.items() if len(k) > 1)


def _ordered_rows(result, query) -> list[tuple]:
    """Every result row, honouring the query's ORDER BY (sorted otherwise
    for deterministic output)."""
    from repro.query.builder import sort_rows

    order_by = getattr(query, "order_by", ())
    if order_by:
        return sort_rows(result.tuples, result.attributes, order_by)
    return result.sorted_tuples()


def _emit_result(result, query, fmt: str, show: int) -> None:
    """Print one query result to stdout in the requested format."""
    import json

    if fmt == "json":
        print(json.dumps({
            "name": result.name,
            "columns": list(result.attributes),
            "rows": [list(row) for row in _ordered_rows(result, query)],
        }))
    elif fmt == "csv":
        writer = csv.writer(sys.stdout)
        writer.writerow(result.attributes)
        writer.writerows(_ordered_rows(result, query))
    elif show > 0:
        if getattr(query, "order_by", ()):
            for row in _ordered_rows(result, query)[:show]:
                print(f"    {row}")
        else:  # O(n) sample, not a full O(n log n) sort
            for row in heapq.nsmallest(show, result.tuples):
                print(f"    {row}")


def engine_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``engine`` subcommand."""
    from repro.engine import Engine
    from repro.obs import Tracer
    from repro.query.parser import parse_query
    from repro.relational.database import Database

    parser = build_engine_parser()
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    if args.limit is not None and args.limit < 0:
        parser.error("--limit must be >= 0")
    if args.delta and not args.subscribe:
        parser.error("--delta requires --subscribe")
    if args.subscribe and args.repeat != 1:
        parser.error("--subscribe does not combine with --repeat "
                     "(a standing query is already long-lived)")
    if args.subscribe and args.backend != "python":
        parser.error("--subscribe maintains results incrementally on the "
                     "python backend; --backend does not apply")
    try:
        deltas = [_parse_delta(spec) for spec in args.delta]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    queries: list = []
    if args.demo:
        database, default_queries = _demo_instance(args.demo, args.size)
    else:
        database = Database()
        default_queries = []
    try:
        for spec in args.relation:
            database.add(_load_csv_relation(spec))
    except (OSError, ValueError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    queries.extend(args.query)
    if args.query_file:
        try:
            with open(args.query_file) as handle:
                for line in handle:
                    line = line.strip()
                    if line and not line.startswith("#"):
                        queries.append(line)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if not queries:
        queries = default_queries
    if not queries:
        print("error: no queries; pass -q/--query-file or --demo",
              file=sys.stderr)
        return 2
    if len(database) == 0:
        print("error: no relations; pass --relation or --demo",
              file=sys.stderr)
        return 2

    # The CLI always counts operations: the per-query summary line is the
    # cheapest window into what a strategy actually did (and shows zero
    # work on result-cache hits).  Tracing stays opt-in via --trace.
    tracer = Tracer() if args.trace else None
    engine = Engine(database=database, tracer=tracer, collect_operations=True)
    # In the machine-consumable formats, only result rows go to stdout;
    # the session chatter (banner, explain, timing, stats) moves to stderr.
    chatter = sys.stdout if args.format == "table" else sys.stderr
    relation_summary = ", ".join(
        f"{name}({len(database.get(name))})" for name in database.relation_names
    )
    print(f"engine session over {len(database)} relations: {relation_summary}",
          file=chatter)
    try:
        # Parse and type-check once: the query list and catalog are fixed
        # for the whole run, and the repeat rounds exist to time the engine,
        # not redundant validation.
        parsed_queries = []
        for query in queries:
            parsed = parse_query(query) if isinstance(query, str) else query
            mixed = _mixed_type_variables(parsed, engine.database)
            if mixed:
                print(f"error: variable(s) {', '.join(mixed)} join "
                      f"columns with mixed value types; int and text "
                      f"columns do not join", file=sys.stderr)
                return 2
            parsed_queries.append(parsed)

        if args.subscribe:
            subs = []
            for query in parsed_queries:
                if args.explain:
                    print(file=chatter)
                    print(engine.explain(
                        query, mode=args.mode,
                        aggregate_mode=args.aggregate_mode,
                        ranked_mode=args.ranked_mode,
                    ).render(), file=chatter)
                started = time.perf_counter()
                sub = engine.subscribe(
                    query, mode=args.mode,
                    aggregate_mode=args.aggregate_mode,
                    ranked_mode=args.ranked_mode)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                maintained = ("incremental" if sub.incremental
                              else f"refresh-only: {sub.fallback_reason}")
                print(f"[subscribe] {sub.result.name}: {len(sub.result)} "
                      f"tuples in {elapsed_ms:.2f} ms · "
                      f"{sub.last_maintenance.operations} ops · "
                      f"{maintained}", file=chatter)
                _emit_result(sub.result, sub.query, args.format, args.show)
                subs.append(sub)
            for name, inserts, removals in deltas:
                applied = engine.apply_delta(name, inserts, removals)
                print(f"[delta] {name}: +{len(applied.inserted)} "
                      f"-{len(applied.deleted)} "
                      f"(version {applied.version})", file=chatter)
                for sub in subs:
                    reads = any(atom.relation == name
                                for atom in sub.query.core.atoms)
                    if reads and applied.changed:
                        maint = sub.last_maintenance
                        print(f"[maintain] {sub.result.name}: {maint.kind} "
                              f"· {maint.operations} ops · {maint.reason}",
                              file=chatter)
                    _emit_result(sub.result, sub.query, args.format,
                                 args.show)
        for round_index in range(args.repeat if not args.subscribe else 0):
            for query in parsed_queries:
                if args.explain:
                    print(file=chatter)
                    print(engine.explain(
                        query, mode=args.mode,
                        aggregate_mode=args.aggregate_mode,
                        ranked_mode=args.ranked_mode,
                        backend=args.backend,
                    ).render(), file=chatter)
                started = time.perf_counter()
                try:
                    result = engine.execute(
                        query, mode=args.mode, limit=args.limit,
                        aggregate_mode=args.aggregate_mode,
                        ranked_mode=args.ranked_mode,
                        backend=args.backend)
                except TypeError as error:
                    # Joining an all-int relation against a textual one
                    # compares incomparable values in the sorted engines;
                    # with aggregates, the semiring fold can also hit a
                    # non-numeric column.  Narrow to this call so other
                    # TypeErrors traceback, and point at the right culprit.
                    if getattr(query, "aggregates", ()):
                        hint = ("is an aggregate (SUM/MIN/MAX) applied to "
                                "a column whose values do not support it?")
                    else:
                        hint = ("are joined relations loaded with "
                                "different value types? int and text "
                                "columns do not join")
                    print(f"error: {error} ({hint})", file=sys.stderr)
                    return 2
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                label = f"[run {round_index + 1}/{args.repeat}]"
                operations = engine.last_operations
                work = ""
                if operations is not None:
                    work = (f" · {operations.total()} ops "
                            f"({operations.search_nodes} search nodes)")
                print(f"{label} {result.name}: {len(result)} tuples "
                      f"in {elapsed_ms:.2f} ms{work}", file=chatter)
                _emit_result(result, query, args.format, args.show)
                if args.profile and round_index == 0:
                    print(engine.profile(
                        query, mode=args.mode,
                        aggregate_mode=args.aggregate_mode,
                        ranked_mode=args.ranked_mode,
                    ).render(), file=chatter)
    except ReproError as error:  # parse/schema/dispatch problems
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(file=chatter)
    print(engine.stats, file=chatter)
    if args.metrics:
        print(file=chatter)
        print(engine.metrics_exposition(), end="", file=chatter)
    if args.trace:
        try:
            exported = engine.tracer.export_ndjson(args.trace)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"wrote {exported} spans to {args.trace}", file=chatter)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "engine":
        return engine_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in _EXPERIMENTS.items():
            print(f"{name:16s} {description}")
        return 0

    if args.experiment == "engine":
        # Reachable only when other flags preceded 'engine' in argv.
        parser.error("'engine' must be the first argument: "
                     "repro engine [options]")
        return 2  # pragma: no cover - parser.error raises SystemExit

    if args.experiment == "all":
        names = list(_EXPERIMENTS.keys())
    elif args.experiment in _EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; run 'python -m repro list'"
        )
        return 2  # pragma: no cover - parser.error raises SystemExit

    for name in names:
        _description, runner = _EXPERIMENTS[name]
        table = runner(args)
        print(table)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
