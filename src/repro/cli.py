"""Command-line entry point: run the paper's experiments from a shell.

Usage::

    python -m repro list                 # list available experiments
    python -m repro table1               # run one experiment and print its table
    python -m repro all                  # run every experiment
    python -m repro triangle --sizes 100 200 400 --family skew

Experiments print the same tables the benchmark harness embeds, so this is
the quickest way to regenerate a single paper artifact without pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    run_acyclic_dc,
    run_acyclify,
    run_bound_lps,
    run_example1_experiment,
    run_inequalities,
    run_loomis_whitney,
    run_table1,
    run_table2,
    run_tightness,
    run_triangle_bounds,
    run_triangle_scaling,
)
from repro.experiments.runner import ExperimentTable

# Registry: name -> (description, runner taking the parsed args).
_EXPERIMENTS: dict[str, tuple[str, Callable[[argparse.Namespace], ExperimentTable]]] = {
    "table1": ("Table 1: bound taxonomy",
               lambda args: run_table1()),
    "table2": ("Table 2: PANDA proof sequence for Example 1",
               lambda args: run_table2(scale=args.scale)),
    "triangle-bounds": ("AGM LP regimes for the triangle (E3)",
                        lambda args: run_triangle_bounds()),
    "triangle": ("Triangle scaling: WCOJ vs pairwise (E4)",
                 lambda args: run_triangle_scaling(sizes=tuple(args.sizes),
                                                   family=args.family)),
    "loomis-whitney": ("Loomis-Whitney separation (E5)",
                       lambda args: run_loomis_whitney(sizes=tuple(args.sizes))),
    "acyclic-dc": ("Algorithm 3 vs Theorem 5.1 bound (E6)",
                   lambda args: run_acyclic_dc(sizes=tuple(args.sizes))),
    "example1": ("PANDA on Example 1 vs bound (75) (E7)",
                 lambda args: run_example1_experiment(scales=tuple(args.sizes))),
    "bound-lps": ("Modular vs polymatroid LPs (E8)",
                  lambda args: run_bound_lps()),
    "acyclify": ("Constraint acyclification (E9)",
                 lambda args: run_acyclify()),
    "inequalities": ("Shearer / Friedgut / Zhang-Yeung (E10)",
                     lambda args: run_inequalities()),
    "tightness": ("AGM tightness (E11)",
                  lambda args: run_tightness()),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Worst-Case Optimal Join "
                    "Algorithms' (Ngo, PODS 2018).",
    )
    parser.add_argument("experiment",
                        help="experiment name, 'all', or 'list'")
    parser.add_argument("--sizes", type=int, nargs="+", default=[100, 200, 400],
                        help="instance-size sweep for scaling experiments")
    parser.add_argument("--scale", type=int, default=150,
                        help="instance scale for the Table 2 / Example 1 run")
    parser.add_argument("--family", choices=("skew", "agm_tight"), default="skew",
                        help="instance family for the triangle scaling experiment")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (description, _) in _EXPERIMENTS.items():
            print(f"{name:16s} {description}")
        return 0

    if args.experiment == "all":
        names = list(_EXPERIMENTS.keys())
    elif args.experiment in _EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; run 'python -m repro list'"
        )
        return 2  # pragma: no cover - parser.error raises SystemExit

    for name in names:
        _description, runner = _EXPERIMENTS[name]
        table = runner(args)
        print(table)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
