"""Benchmark of PANDA on Example 1 (experiment E7): intermediate sizes vs the
runtime bound (75), plus wall-clock against Generic-Join and the best
pairwise plan on the same instances."""

import pytest

from repro.experiments.example1 import run_example1_experiment
from repro.joins.binary_plans import best_left_deep_execution
from repro.joins.generic_join import generic_join
from repro.panda.example1 import example1_database, example1_query, run_example1


@pytest.mark.experiment("E7")
def test_example1_intermediates_vs_bound(benchmark, show_table):
    table = benchmark(run_example1_experiment, scales=(100, 200, 400), seed=0)
    show_table(table)
    assert all(row["within bound"] for row in table.rows)
    assert all(row["matches generic join"] for row in table.rows)


EX1_DB = example1_database(scale=300, seed=2)
EX1_QUERY = example1_query()


@pytest.mark.experiment("E7")
def test_panda_wall_clock(benchmark):
    run = benchmark(run_example1, database=EX1_DB)
    assert run.matches_generic_join


@pytest.mark.experiment("E7")
def test_generic_join_wall_clock(benchmark):
    result = benchmark(generic_join, EX1_QUERY, EX1_DB)
    assert len(result) >= 0


@pytest.mark.experiment("E7")
def test_best_pairwise_wall_clock(benchmark):
    execution = benchmark(best_left_deep_execution, EX1_QUERY, EX1_DB, 24)
    assert execution.result is not None
