"""Benchmark of the AGM-bound LP regimes (experiment E3) and of the bound
computation machinery itself (LP solve time per query shape)."""

import pytest

from repro.bounds.agm import agm_bound_from_sizes, rho_star
from repro.experiments.triangle_bounds import run_triangle_bounds
from repro.query.atoms import clique_query, cycle_query, loomis_whitney_query, triangle_query


@pytest.mark.experiment("E3")
def test_triangle_bound_regimes(benchmark, show_table):
    table = benchmark(run_triangle_bounds, base=1000)
    show_table(table)
    assert table.rows[0]["LP vertex"] == "(1/2,1/2,1/2)"


@pytest.mark.experiment("E3")
@pytest.mark.parametrize("query,expected_rho", [
    (triangle_query(), 1.5),
    (cycle_query(6), 3.0),
    (clique_query(5), 2.5),
    (loomis_whitney_query(5), 1.25),
])
def test_edge_cover_lp_speed(benchmark, query, expected_rho):
    value = benchmark(rho_star, query)
    assert value == pytest.approx(expected_rho)


@pytest.mark.experiment("E3")
def test_agm_bound_from_sizes_speed(benchmark):
    hypergraph = clique_query(5).hypergraph()
    sizes = {key: 10_000 for key in hypergraph.edge_keys}
    bound = benchmark(agm_bound_from_sizes, hypergraph, sizes)
    assert bound.bound == pytest.approx(10_000 ** 2.5, rel=1e-6)
