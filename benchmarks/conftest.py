"""Shared benchmark configuration.

Every benchmark prints the experiment table it regenerates (so the series the
paper reports are visible directly in the benchmark output) and records the
wall-clock of the underlying harness via pytest-benchmark.  Scales are kept
laptop-friendly; pass ``--benchmark-only`` to run them without the unit
tests.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): marks a benchmark as regenerating a paper artifact"
    )


@pytest.fixture
def show_table(capsys):
    """Print an experiment table so it appears in the benchmark report."""

    def _show(table):
        with capsys.disabled():
            print()
            print(table)
        return table

    return _show
