"""In-recursion aggregation vs drain-and-fold on a skewed acyclic group-by.

The FAQ-style execution mode folds eliminated variables inside the WCOJ
recursion: for the acyclic group-by ``Q(A, COUNT(*)) :- R(A,B), S(B,C)``
every group binding's tail collapses to a semiring value, and the
separator-keyed memo computes each hub's fan-out subtree once.  The
drain-and-fold baseline enumerates the full join and folds its output —
join-linear, so the skewed hub's subtree is re-enumerated for *every*
group that reaches it.

The instance is deliberately skewed: every A sees every B, and one hub B
carries almost all of S's fan-out.  In-recursion aggregation pays for the
hub subtree once; drain-and-fold pays for it once per group, which is the
asymptotic gap this benchmark records as the ratio of join search nodes
(a deterministic operation count; wall-clock is printed for the record
but does not gate — shared CI runners are noisy).  All four executors are
also checked for identical grouped results.

Run standalone (exit code gates on the operation-count ratio)::

    python benchmarks/bench_aggregate_pushdown.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_aggregate_pushdown.py -q
"""

from __future__ import annotations

import sys
import time

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.joins.instrumentation import OperationCounter
from repro.relational.database import Database
from repro.relational.relation import Relation

#: Minimum acceptable fold/in-recursion search-node ratio.
TARGET_RATIO = 10.0

QUERY = "Q(A, COUNT(*), SUM(C) AS total) :- R(A,B), S(B,C)"


def skewed_group_by_instance(groups: int, hubs: int = 30,
                             hub_fanout: int = 200) -> Database:
    """Every A joins every B; hub B=0 holds almost all of S's fan-out."""
    r = Relation("R", ("a", "b"),
                 [(a, b) for a in range(groups) for b in range(hubs)])
    s_rows = [(0, c) for c in range(hub_fanout)]
    s_rows += [(b, c) for b in range(1, hubs) for c in range(2)]
    s = Relation("S", ("b", "c"), s_rows)
    return Database([r, s])


def measure(groups: int) -> tuple[float, float, float]:
    """(search-node ratio, in-recursion ms, fold ms); asserts agreement."""
    database = skewed_group_by_instance(groups)
    engine = Engine(database=database, cache_results=False)

    recursion_counter = OperationCounter()
    started = time.perf_counter()
    recursion = engine.execute(QUERY, mode="generic",
                               aggregate_mode="recursion",
                               counter=recursion_counter)
    recursion_ms = (time.perf_counter() - started) * 1000.0

    fold_counter = OperationCounter()
    started = time.perf_counter()
    fold = engine.execute(QUERY, mode="generic", aggregate_mode="fold",
                          counter=fold_counter)
    fold_ms = (time.perf_counter() - started) * 1000.0

    expected = sorted(fold.tuples)
    if sorted(recursion.tuples) != expected:
        raise AssertionError("in-recursion and fold answers disagree")
    for mode, kwargs in (("leapfrog", {"aggregate_mode": "recursion"}),
                         ("yannakakis", {"aggregate_mode": "recursion"}),
                         ("naive", {})):
        other = engine.execute(QUERY, mode=mode, **kwargs)
        if sorted(other.tuples) != expected:
            raise AssertionError(f"{mode} disagrees on {QUERY}")

    ratio = fold_counter.search_nodes / max(recursion_counter.search_nodes, 1)
    return ratio, recursion_ms, fold_ms


@pytest.mark.experiment("aggregate_pushdown")
@pytest.mark.parametrize("groups", [40])
def test_in_recursion_aggregation_beats_drain_and_fold(groups):
    """Variable elimination must prune the search, not just defer the fold."""
    ratio, _recursion_ms, _fold_ms = measure(groups)
    assert ratio >= TARGET_RATIO


def run(group_counts=(40, 80, 160)) -> bool:
    print("in-recursion aggregation vs drain-and-fold — skewed acyclic "
          f"group-by, query: {QUERY}")
    print(f"{'groups':>8s} {'recursion (ms)':>15s} {'fold (ms)':>11s} "
          f"{'node ratio':>11s}")
    ok = True
    for groups in group_counts:
        ratio, recursion_ms, fold_ms = measure(groups)
        ok = ok and ratio >= TARGET_RATIO
        print(f"{groups:8d} {recursion_ms:15.2f} {fold_ms:11.2f} "
              f"{ratio:10.1f}x")
    print(f"target: >= {TARGET_RATIO:.0f}x fewer search nodes in-recursion")
    return ok


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    return 0 if run(group_counts=(30, 60) if quick else (40, 80, 160)) else 1


if __name__ == "__main__":
    sys.exit(main())
