"""Benchmark of AGM-bound tightness (experiment E11): actual output vs bound
on product-structure instances across query shapes."""

import pytest

from repro.experiments.tightness import run_tightness


@pytest.mark.experiment("E11")
def test_tightness_table(benchmark, show_table):
    table = benchmark(run_tightness, n=256)
    show_table(table)
    for row in table.rows:
        assert row["actual / bound"] == pytest.approx(1.0, abs=0.05)
