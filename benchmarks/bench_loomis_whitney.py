"""Benchmark of the Loomis–Whitney experiment (E5): WCOJ vs pairwise plans on
LW(k) instances, the separation Ngo et al. proved."""

import pytest

from repro.datagen.loomis_whitney import loomis_whitney_skew_instance
from repro.experiments.loomis_whitney import run_loomis_whitney
from repro.joins.binary_plans import best_left_deep_execution
from repro.joins.generic_join import generic_join


@pytest.mark.experiment("E5")
def test_loomis_whitney_separation(benchmark, show_table):
    table = benchmark(run_loomis_whitney, ks=(3, 4), sizes=(60, 120), family="skew")
    show_table(table)
    ratios = [float(row["pairwise/wcoj ratio"]) for row in table.rows]
    assert all(ratio > 1.0 for ratio in ratios)


LW4_QUERY, LW4_DB = loomis_whitney_skew_instance(4, 150)


@pytest.mark.experiment("E5")
def test_lw4_wcoj_wall_clock(benchmark):
    result = benchmark(generic_join, LW4_QUERY, LW4_DB)
    assert len(result) > 0


@pytest.mark.experiment("E5")
def test_lw4_best_pairwise_wall_clock(benchmark):
    execution = benchmark(best_left_deep_execution, LW4_QUERY, LW4_DB)
    assert execution.result is not None
