"""Benchmark of constraint acyclification (experiment E9)."""

import pytest

from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.acyclify import acyclify, acyclify_simple_fds, best_acyclic_weakening
from repro.experiments.acyclify_exp import (
    query63_constraints,
    run_acyclify,
    simple_fd_cycle_constraints,
)


@pytest.mark.experiment("E9")
def test_acyclify_experiment(benchmark, show_table):
    table = benchmark(run_acyclify)
    show_table(table)
    assert table.rows[1]["bound preserved"]


@pytest.mark.experiment("E9")
def test_greedy_acyclify_speed(benchmark):
    dc = query63_constraints()
    result = benchmark(acyclify, dc)
    assert result.is_acyclic()


@pytest.mark.experiment("E9")
def test_simple_fd_acyclify_speed(benchmark):
    dc = simple_fd_cycle_constraints()
    result = benchmark(acyclify_simple_fds, dc)
    assert result.is_acyclic()


@pytest.mark.experiment("E9")
def test_exhaustive_acyclify_speed(benchmark):
    dc = query63_constraints()
    result = benchmark(
        best_acyclic_weakening, dc, lambda d: polymatroid_bound(d).log2_bound)
    assert result.is_acyclic()
