"""Benchmark of Algorithm 3 under acyclic degree constraints (experiment E6)."""

import pytest

from repro.experiments.acyclic_dc import chain_instance, run_acyclic_dc
from repro.joins.backtracking import backtracking_join
from repro.joins.generic_join import generic_join


@pytest.mark.experiment("E6")
def test_acyclic_dc_vs_bound(benchmark, show_table):
    table = benchmark(run_acyclic_dc, sizes=(50, 100, 200), fanout=3, seed=0)
    show_table(table)
    assert all(row["within bound"] for row in table.rows)


CHAIN_QUERY, CHAIN_DB, CHAIN_DC = chain_instance(num_r=200, fanout=3, seed=1)


@pytest.mark.experiment("E6")
def test_backtracking_wall_clock(benchmark):
    result = benchmark(backtracking_join, CHAIN_QUERY, CHAIN_DB, CHAIN_DC)
    assert result == generic_join(CHAIN_QUERY, CHAIN_DB)


@pytest.mark.experiment("E6")
def test_generic_join_on_chain_wall_clock(benchmark):
    """Reference point: Generic-Join (cardinality-only reasoning) on the same
    chain instance Algorithm 3 handles with degree statistics."""
    result = benchmark(generic_join, CHAIN_QUERY, CHAIN_DB)
    assert len(result) > 0
