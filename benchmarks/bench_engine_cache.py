"""Warm-vs-cold engine throughput on repeated workloads.

The point of the `repro.engine` subsystem is amortization: a long-lived
:class:`~repro.engine.Engine` session keeps plans, indexes and results
across queries, while one-shot execution pays for parsing, the AGM LP,
variable ordering and index builds on every call.  This benchmark measures
that gap on the canonical repeated workloads (triangle on skewed and
AGM-tight instances, Loomis–Whitney LW(4)) and records the warm/cold
speedup — the series future scaling PRs (sharding, async serving) should
move.

Run standalone (prints the timing table with the measured speedups; the
exit code gates on the *deterministic* cache-hit accounting, since
wall-clock on shared CI runners is noisy)::

    python benchmarks/bench_engine_cache.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_engine_cache.py -q
"""

from __future__ import annotations

import sys
import time

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.datagen.loomis_whitney import loomis_whitney_random_instance
from repro.datagen.worstcase import (
    triangle_agm_tight_instance,
    triangle_skew_instance,
)

#: Minimum acceptable aggregate warm/cold speedup on repeated queries.
TARGET_SPEEDUP = 2.0


WORKLOAD_NAMES = ("triangle-skew", "triangle-tight", "lw4")


def _workload(name: str, scale: int):
    """The (query, database) pair of one named repeated-query workload."""
    if name == "triangle-skew":
        return triangle_skew_instance(scale)
    if name == "triangle-tight":
        return triangle_agm_tight_instance(scale)
    if name == "lw4":
        return loomis_whitney_random_instance(4, scale, seed=7)
    raise ValueError(f"unknown workload {name!r}")


def _workloads(scale: int):
    """(name, query, database) triples for the repeated-query workloads."""
    return [(name, *_workload(name, scale)) for name in WORKLOAD_NAMES]


def measure_workload(query, database, repeats: int) -> tuple[float, float]:
    """(cold_seconds, warm_seconds) for ``repeats`` runs of one query.

    Cold runs a fresh engine per repetition (every plan, index and result
    recomputed); warm reuses one session, so repetitions after the first
    are served from the caches.
    """
    started = time.perf_counter()
    for _ in range(repeats):
        engine = Engine(database=database)
        engine.execute(query)
    cold = time.perf_counter() - started

    session = Engine(database=database)
    started = time.perf_counter()
    for _ in range(repeats):
        session.execute(query)
    warm = time.perf_counter() - started
    return cold, warm


def cache_behavior_ok(query, database, repeats: int) -> bool:
    """Deterministic check that a warm session actually served from caches.

    Unlike the wall-clock speedup (which a loaded CI runner can distort),
    cache hit counts are exact: ``repeats`` runs must plan once and serve
    ``repeats - 1`` results from the cache.
    """
    session = Engine(database=database)
    for _ in range(repeats):
        session.execute(query)
    stats = session.stats
    return (stats.plan_misses == 1
            and stats.result_hits == repeats - 1
            and stats.result_misses == 1)


def run(scale: int = 300, repeats: int = 10) -> tuple[float, bool]:
    """Run every workload and print the table.

    Returns ``(aggregate speedup, all cache checks passed)``.
    """
    rows = []
    total_cold = 0.0
    total_warm = 0.0
    all_cached = True
    for name, query, database in _workloads(scale):
        cold, warm = measure_workload(query, database, repeats)
        cached = cache_behavior_ok(query, database, repeats)
        all_cached = all_cached and cached
        total_cold += cold
        total_warm += warm
        rows.append((name, cold, warm, cold / max(warm, 1e-12), cached))

    print(f"engine cache throughput — {repeats} repeats per query, "
          f"scale ~{scale} tuples/relation")
    print(f"{'workload':16s} {'cold (s)':>10s} {'warm (s)':>10s} "
          f"{'speedup':>9s} {'caches':>8s}")
    for name, cold, warm, speedup, cached in rows:
        print(f"{name:16s} {cold:10.4f} {warm:10.4f} {speedup:8.1f}x "
              f"{'ok' if cached else 'MISS':>8s}")
    aggregate = total_cold / max(total_warm, 1e-12)
    print(f"{'aggregate':16s} {total_cold:10.4f} {total_warm:10.4f} "
          f"{aggregate:8.1f}x  (target >= {TARGET_SPEEDUP:.0f}x)")
    return aggregate, all_cached


@pytest.mark.experiment("engine-cache")
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_warm_cache_speedup(name):
    """Warm sessions must actually serve from their caches.

    The gate is the deterministic hit accounting; the wall-clock speedup is
    printed for the record (the standalone ``main()`` records it per
    workload) rather than asserted, because timing assertions flake on
    loaded machines.  Workloads are generated inside the test so importing
    this module (e.g. for the standalone CLI path) does no datagen.
    """
    query, database = _workload(name, 150)
    assert cache_behavior_ok(query, database, repeats=5)
    cold, warm = measure_workload(query, database, repeats=5)
    print(f"{name}: warm/cold speedup {cold / max(warm, 1e-12):.1f}x")


def main(argv: list[str] | None = None) -> int:
    """Exit non-zero when cache behaviour breaks (a deterministic check).

    The wall-clock speedup is recorded in the table for trend tracking but
    does not gate the exit code — timing on shared CI runners is noisy.
    """
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    _aggregate, all_cached = run(scale=120 if quick else 300,
                                 repeats=5 if quick else 10)
    return 0 if all_cached else 1


if __name__ == "__main__":
    sys.exit(main())
