"""Benchmark / regeneration of Table 2 (experiment E2): the PANDA program for
Example 1, from proof sequence to executed partitions and joins."""

import pytest

from repro.experiments.table2 import run_table2
from repro.panda.example1 import example1_database, run_example1


@pytest.mark.experiment("E2")
def test_table2_regeneration(benchmark, show_table):
    table = benchmark(run_table2, scale=150, seed=0)
    show_table(table)
    assert len(table.rows) == 9
    assert [row["operation"] for row in table.rows].count("join") == 4


@pytest.mark.experiment("E2")
def test_panda_execution_wall_clock(benchmark):
    """Wall-clock of the PANDA execution itself on a fixed instance."""
    database = example1_database(scale=300, seed=1)
    result = benchmark(run_example1, database=database)
    assert result.matches_generic_join
