"""Benchmark / regeneration of Table 1 (experiment E1).

Regenerates the entropic-vs-polymatroid bound taxonomy and times the bound
computations that produce it.
"""

import pytest

from repro.experiments.table1 import run_table1


@pytest.mark.experiment("E1")
def test_table1_regeneration(benchmark, show_table):
    table = benchmark(run_table1, triangle_n=200, fd_m=12, example1_scale=100)
    show_table(table)
    assert len(table.rows) == 3
    assert table.rows[0]["polymatroid tight (observed)"]
