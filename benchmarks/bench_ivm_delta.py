"""Incremental view maintenance vs re-execution on single-tuple deltas.

A standing star-schema aggregate view ``Q(A, SUM(B1), COUNT(*)) :-
R1(A,B1), R2(A,B2), R3(A,B3)`` is subscribed once; then a stream of
single-tuple inserts and deletes lands on the arm relations.  The
subscription repairs its stored join-tree messages along one root path per
delta — work proportional to the touched entries — while a cold
re-execution rescans every relation.  This benchmark records the ratio of
executor operation counts between the two (deterministic; wall-clock is
printed for the record but does not gate — shared CI runners are noisy)
and checks after every delta that the maintained rows are bit-identical
to a fresh uncached execution through the engine's dispatch path.

Run standalone (exit code gates on the operation-count ratio)::

    python benchmarks/bench_ivm_delta.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_ivm_delta.py -q
"""

from __future__ import annotations

import random
import sys
import time

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.joins.instrumentation import OperationCounter
from repro.relational.database import Database
from repro.relational.relation import Relation

#: Minimum acceptable re-execution/incremental operation ratio (CI gate).
TARGET_RATIO = 10.0

QUERY = ("Q(A, SUM(B1) AS total, COUNT(*) AS n) :- "
         "R1(A,B1), R2(A,B2), R3(A,B3)")


def star_instance(groups: int, fanout: int = 8) -> Database:
    """Three arms around a shared group key A, ``fanout`` rows per group.

    Group keys are spread so relation sizes sit mid power-of-two bucket:
    single-tuple deltas must exercise the incremental path, not trip the
    statistics-drift re-planner.
    """
    rng = random.Random(groups)
    relations = []
    for i, column in enumerate(("b1", "b2", "b3")):
        rows = set()
        for a in range(groups):
            while len(rows) < (a + 1) * fanout:
                rows.add((a, rng.randrange(10 * fanout * groups)))
        relations.append(Relation(f"R{i + 1}", ("a", column), rows))
    return Database(relations)


def measure(groups: int, deltas: int = 12) -> tuple[float, float, float]:
    """(ops ratio, incremental ms, re-execution ms); asserts agreement.

    Streams ``deltas`` alternating single-tuple inserts and deletes over
    the three arm relations; after each, compares the subscription's rows
    against a fresh counted execution (counters bypass the result cache,
    so the reference pays full price every time, as a re-execution
    maintainer would).
    """
    database = star_instance(groups)
    engine = Engine(database=database)
    reference = Engine(database=database)  # separate session: cold costs
    sub = engine.subscribe(QUERY)
    if not sub.incremental:
        raise AssertionError(
            f"star view fell back to refresh: {sub.fallback_reason}")

    rng = random.Random(groups + 1)
    incremental_ops = reexec_ops = 0
    incremental_s = reexec_s = 0.0
    for step in range(deltas):
        name = f"R{step % 3 + 1}"
        if step % 2 == 0:
            rows = {(rng.randrange(groups), -1 - step)}
            applied = engine.apply_delta(name, inserts=rows)
        else:
            victim = next(iter(engine.database.get(name).tuples))
            applied = engine.apply_delta(name, deletes={victim})
        if not applied.changed:
            raise AssertionError("benchmark delta was a no-op")
        maint = sub.last_maintenance
        if maint.kind != "incremental":
            raise AssertionError(
                f"delta {step} fell back to refresh: {maint.reason}")
        incremental_ops += maint.operations
        incremental_s += maint.seconds

        counter = OperationCounter()
        started = time.perf_counter()
        cold = reference.execute(QUERY, counter=counter)
        reexec_s += time.perf_counter() - started
        reexec_ops += counter.total()
        if sorted(cold.tuples) != sub.rows():
            raise AssertionError(
                f"maintained rows diverged from re-execution at delta {step}")

    ratio = reexec_ops / max(incremental_ops, 1)
    return ratio, incremental_s * 1000.0, reexec_s * 1000.0


@pytest.mark.experiment("ivm_delta")
@pytest.mark.parametrize("groups", [40])
def test_incremental_maintenance_beats_reexecution(groups):
    """Single-tuple deltas must cost a root path, not a full re-execution."""
    ratio, _incremental_ms, _reexec_ms = measure(groups)
    assert ratio >= TARGET_RATIO


def run(group_counts=(40, 80, 160)) -> bool:
    print("incremental maintenance vs re-execution — star aggregate view, "
          f"query: {QUERY}")
    print(f"{'groups':>8s} {'incremental (ms)':>17s} "
          f"{'re-execution (ms)':>18s} {'ops ratio':>10s}")
    ok = True
    for groups in group_counts:
        ratio, incremental_ms, reexec_ms = measure(groups)
        ok = ok and ratio >= TARGET_RATIO
        print(f"{groups:8d} {incremental_ms:17.2f} {reexec_ms:18.2f} "
              f"{ratio:9.1f}x")
    print(f"target: >= {TARGET_RATIO:.0f}x fewer operations incrementally")
    return ok


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    return 0 if run(group_counts=(30, 60) if quick else (40, 80, 160)) else 1


if __name__ == "__main__":
    sys.exit(main())
