"""Selection pushdown vs post-hoc filtering on a skewed triangle workload.

The unified query surface lowers constants and comparisons into the join
itself: the WCOJ executors bind constant-pinned variables at the top of the
recursion and prune candidates the moment a predicate's variables are
bound.  The alternative — computing the full join and filtering the output
— pays for every pruned subtree.  On skewed instances (where a heavy hub
value makes the full join large) the gap is the whole point of pushdown.

This benchmark runs both strategies over the skew-triangle family with a
selective constant pin plus a comparison, and records the ratio of join
search nodes (a deterministic operation count; wall-clock is printed for
the record but does not gate — shared CI runners are noisy).

Run standalone (exit code gates on the operation-count ratio)::

    python benchmarks/bench_pushdown.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_pushdown.py -q
"""

from __future__ import annotations

import sys
import time

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.datagen.worstcase import triangle_skew_instance
from repro.joins.instrumentation import OperationCounter
from repro.query.builder import Query

#: Minimum acceptable pushdown/post-hoc search-node ratio.
TARGET_RATIO = 2.0

FULL = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
SELECTED = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C), A == 1, B < C"


def _post_hoc_rows(engine: Engine, counter: OperationCounter) -> list[tuple]:
    """The baseline: full join first, then filter the finished tuples."""
    spec = Query.coerce(SELECTED)
    variables = spec.core.variables
    full = engine.execute(FULL, mode="generic", counter=counter)
    return sorted(
        t for t in full.tuples
        if all(sel.evaluate(dict(zip(variables, t)))
               for sel in spec.all_selections)
    )


def measure(scale: int) -> tuple[float, float, float]:
    """(search-node ratio, pushdown ms, post-hoc ms); asserts agreement."""
    _, database = triangle_skew_instance(scale)
    engine = Engine(database=database, cache_results=False)

    pushdown_counter = OperationCounter()
    started = time.perf_counter()
    pushed = engine.execute(SELECTED, mode="generic",
                            counter=pushdown_counter)
    pushdown_ms = (time.perf_counter() - started) * 1000.0

    posthoc_counter = OperationCounter()
    started = time.perf_counter()
    filtered = _post_hoc_rows(engine, posthoc_counter)
    posthoc_ms = (time.perf_counter() - started) * 1000.0

    if sorted(pushed.tuples) != filtered:
        raise AssertionError("pushdown and post-hoc answers disagree")
    ratio = posthoc_counter.search_nodes / max(pushdown_counter.search_nodes, 1)
    return ratio, pushdown_ms, posthoc_ms


@pytest.mark.experiment("pushdown")
@pytest.mark.parametrize("scale", [200])
def test_pushdown_beats_post_hoc_filtering(scale):
    """Binding-level pushdown must prune the search, not just the output."""
    ratio, _pushdown_ms, _posthoc_ms = measure(scale)
    assert ratio >= TARGET_RATIO


def run(scales=(200, 400, 800)) -> bool:
    print("selection pushdown vs post-hoc filtering — skewed triangle, "
          f"query: {SELECTED}")
    print(f"{'scale':>8s} {'pushdown (ms)':>14s} {'post-hoc (ms)':>14s} "
          f"{'node ratio':>11s}")
    ok = True
    for scale in scales:
        ratio, pushdown_ms, posthoc_ms = measure(scale)
        ok = ok and ratio >= TARGET_RATIO
        print(f"{scale:8d} {pushdown_ms:14.2f} {posthoc_ms:14.2f} "
              f"{ratio:10.1f}x")
    print(f"target: >= {TARGET_RATIO:.0f}x fewer search nodes with pushdown")
    return ok


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    return 0 if run(scales=(150, 300) if quick else (200, 400, 800)) else 1


if __name__ == "__main__":
    sys.exit(main())
