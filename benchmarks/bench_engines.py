"""Ablation benchmarks across engines and evaluation modes.

* Yannakakis vs Generic-Join on acyclic (chain) queries — the classical
  output-linear algorithm vs the WCOJ engine on the instances where both
  apply.
* Counting vs materializing the triangle output — the FAQ-style aggregate
  traversal against full enumeration.
* The backtracking search (Algorithm 3) vs Generic-Join on the same
  degree-constrained instance (how much the degree statistics help).
"""

import pytest

from repro.datagen.graphs import erdos_renyi_graph
from repro.datagen.worstcase import triangle_from_graph
from repro.experiments.acyclic_dc import chain_instance
from repro.joins.backtracking import backtracking_join
from repro.joins.counting import count_join, group_count
from repro.joins.generic_join import generic_join
from repro.joins.naive import nested_loop_join
from repro.joins.yannakakis import yannakakis

CHAIN_QUERY, CHAIN_DB, CHAIN_DC = chain_instance(num_r=150, fanout=3, seed=3)
TRI_QUERY, TRI_DB = triangle_from_graph(erdos_renyi_graph(120, 1500, seed=4))


@pytest.mark.experiment("ablation")
def test_yannakakis_on_chain(benchmark):
    result = benchmark(yannakakis, CHAIN_QUERY, CHAIN_DB)
    assert result == generic_join(CHAIN_QUERY, CHAIN_DB)


@pytest.mark.experiment("ablation")
def test_generic_join_on_chain(benchmark):
    result = benchmark(generic_join, CHAIN_QUERY, CHAIN_DB)
    assert len(result) > 0


@pytest.mark.experiment("ablation")
def test_algorithm3_on_chain(benchmark):
    result = benchmark(backtracking_join, CHAIN_QUERY, CHAIN_DB, CHAIN_DC)
    assert len(result) > 0


@pytest.mark.experiment("ablation")
def test_triangle_count_only(benchmark):
    count = benchmark(count_join, TRI_QUERY, TRI_DB)
    assert count == len(generic_join(TRI_QUERY, TRI_DB))


@pytest.mark.experiment("ablation")
def test_triangle_materialize(benchmark):
    result = benchmark(generic_join, TRI_QUERY, TRI_DB)
    assert len(result) >= 0


@pytest.mark.experiment("ablation")
def test_triangle_group_count(benchmark):
    per_vertex = benchmark(group_count, TRI_QUERY, TRI_DB, ("A",))
    assert sum(per_vertex.values()) == count_join(TRI_QUERY, TRI_DB)
