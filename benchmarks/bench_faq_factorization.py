"""Component-factorized vs monolithic elimination on a skewed star group-by.

The in-recursion eliminator memoizes subtrees on their separator, but a
monolithic fold threads the aggregated variable through the separator of
every *other* tail component: for ``Q(A, SUM(B1)) :- R1(A,B1), R2(A,B2),
R3(A,B3)`` the memo key of the B2/B3 subtrees grows by B1 — conditionally
independent arms get re-folded once per B1 value, an ``N^{tail width}``
factor the FAQ bound does not charge.  Component factorization folds each
arm of the residual hypergraph independently and combines the values with
the semiring product, restoring the exact ``N^{max component width}``
bound; this benchmark records the ratio of join search nodes between the
two (a deterministic operation count; wall-clock is printed for the record
but does not gate — shared CI runners are noisy).  Both folds are also
checked for bit-identical grouped results, and every engine strategy for
agreement.

Run standalone (exit code gates on the operation-count ratio)::

    python benchmarks/bench_faq_factorization.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_faq_factorization.py -q
"""

from __future__ import annotations

import random
import sys
import time

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.joins.generic_join import generic_join_stream
from repro.joins.instrumentation import OperationCounter
from repro.query.builder import Query
from repro.query.variable_order import aggregate_elimination_order
from repro.relational.database import Database
from repro.relational.relation import Relation

#: Minimum acceptable monolithic/factorized search-node ratio (CI gate).
TARGET_RATIO = 10.0

QUERY = "Q(A, SUM(B1) AS total, COUNT(*) AS n) :- R1(A,B1), R2(A,B2), R3(A,B3)"


def skewed_star_instance(groups: int, fanout: int = 30,
                         hub_fanout: int = 120) -> Database:
    """Three independent arms around A; group A=0 is a heavy hub.

    Monolithic elimination re-folds the B2 and B3 arms once per distinct
    B1 value of each group, so the hub's wide B1 arm multiplies into the
    other arms' work; the factorized fold pays each arm once per group.
    """
    rng = random.Random(groups)
    relations = []
    for i, column in enumerate(("b1", "b2", "b3")):
        rows = {(0, rng.randrange(4 * hub_fanout)) for _ in range(hub_fanout)}
        rows |= {(a, rng.randrange(4 * fanout))
                 for a in range(1, groups) for _ in range(fanout)}
        relations.append(Relation(f"R{i + 1}", ("a", column), rows))
    return Database(relations)


def measure(groups: int) -> tuple[float, float, float]:
    """(search-node ratio, factorized ms, monolithic ms); asserts agreement."""
    database = skewed_star_instance(groups)
    spec = Query.coerce(QUERY)
    order, _width = aggregate_elimination_order(spec.core,
                                                group=spec.head_vars)

    factorized_counter = OperationCounter()
    started = time.perf_counter()
    factorized = sorted(generic_join_stream(
        spec.core, database, order=order, head=spec.head_vars,
        aggregates=spec.aggregates, counter=factorized_counter))
    factorized_ms = (time.perf_counter() - started) * 1000.0

    monolithic_counter = OperationCounter()
    started = time.perf_counter()
    monolithic = sorted(generic_join_stream(
        spec.core, database, order=order, head=spec.head_vars,
        aggregates=spec.aggregates, counter=monolithic_counter,
        factorize=False))
    monolithic_ms = (time.perf_counter() - started) * 1000.0

    if factorized != monolithic:
        raise AssertionError("factorized and monolithic folds disagree")
    engine = Engine(database=database, cache_results=False)
    for mode in ("generic", "leapfrog", "yannakakis", "binary", "naive"):
        other = engine.execute(QUERY, mode=mode)
        if sorted(other.tuples) != factorized:
            raise AssertionError(f"{mode} disagrees on {QUERY}")

    ratio = (monolithic_counter.search_nodes
             / max(factorized_counter.search_nodes, 1))
    return ratio, factorized_ms, monolithic_ms


@pytest.mark.experiment("faq_factorization")
@pytest.mark.parametrize("groups", [25])
def test_factorized_elimination_beats_monolithic(groups):
    """Independent tail arms must be paid for once each, not as a product."""
    ratio, _factorized_ms, _monolithic_ms = measure(groups)
    assert ratio >= TARGET_RATIO


def run(group_counts=(25, 50, 100)) -> bool:
    print("component-factorized vs monolithic elimination — skewed star "
          f"group-by, query: {QUERY}")
    print(f"{'groups':>8s} {'factorized (ms)':>16s} {'monolithic (ms)':>16s} "
          f"{'node ratio':>11s}")
    ok = True
    for groups in group_counts:
        ratio, factorized_ms, monolithic_ms = measure(groups)
        ok = ok and ratio >= TARGET_RATIO
        print(f"{groups:8d} {factorized_ms:16.2f} {monolithic_ms:16.2f} "
              f"{ratio:10.1f}x")
    print(f"target: >= {TARGET_RATIO:.0f}x fewer search nodes factorized")
    return ok


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    return 0 if run(group_counts=(20, 40) if quick else (25, 50, 100)) else 1


if __name__ == "__main__":
    sys.exit(main())
