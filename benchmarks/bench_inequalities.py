"""Benchmark of the information-theoretic machinery (experiment E10):
Shearer/Friedgut verification and the Shannon-inequality prover, including
the Zhang–Yeung separation."""

import pytest

from repro.experiments.inequalities import run_inequalities
from repro.infotheory.nonshannon import zhang_yeung_expression, zhang_yeung_is_non_shannon
from repro.infotheory.shannon import is_shannon_valid
from repro.infotheory.shearer import shearer_is_valid
from repro.query.atoms import clique_query, triangle_query


@pytest.mark.experiment("E10")
def test_inequalities_experiment(benchmark, show_table):
    table = benchmark(run_inequalities, num_random_distributions=5, seed=0)
    show_table(table)
    assert all(row["holds"] for row in table.rows)


@pytest.mark.experiment("E10")
def test_shearer_prover_speed_triangle(benchmark):
    h = triangle_query().hypergraph()
    assert benchmark(shearer_is_valid, h, {"R": 0.5, "S": 0.5, "T": 0.5})


@pytest.mark.experiment("E10")
def test_shearer_prover_speed_clique4(benchmark):
    h = clique_query(4).hypergraph()
    weights = {key: 1.0 / 3.0 for key in h.edge_keys}
    assert benchmark(shearer_is_valid, h, weights)


@pytest.mark.experiment("E10")
def test_zhang_yeung_separation_speed(benchmark):
    assert benchmark(zhang_yeung_is_non_shannon)


@pytest.mark.experiment("E10")
def test_shannon_prover_speed_on_zy_expression(benchmark):
    expression = zhang_yeung_expression()
    result = benchmark(is_shannon_valid, expression)
    assert result is False
