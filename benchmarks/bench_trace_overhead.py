"""Disabled-tracer overhead on the triangle workload (CI smoke gate).

Observability must be free when it is off.  Sessions built without a
tracer share the :data:`~repro.obs.trace.NULL_TRACER`, and every
instrumentation site in the engine is guarded by ``if tracer.enabled``
— so the whole tracing layer should cost one attribute read per
lifecycle stage.  This benchmark measures exactly that configuration
(the engine default: null tracer, metrics registry on, no operation
counting) against a no-observability baseline (``metrics=False``) on
repeated skewed-triangle executions, and gates the median ratio.

The *enabled* configuration — live tracer plus a detail operation
counter — is measured and printed for the record but not gated:
counting every trie seek in pure Python is real work (tens of percent),
which is exactly why it is opt-in.

Run standalone (exit code gates on the ratio)::

    python benchmarks/bench_trace_overhead.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_trace_overhead.py -q
"""

from __future__ import annotations

import statistics
import sys
import time

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.datagen.worstcase import triangle_skew_instance
from repro.obs import Tracer

#: Maximum acceptable disabled-tracer median slowdown (CI gate).
TARGET_RATIO = 1.05

#: Noisy-runner tolerance: the gate retries before failing.
ATTEMPTS = 3


def measure(size: int, rounds: int) -> dict[str, float]:
    """Median per-query milliseconds for each observability configuration.

    The three engines share one database (and each keeps its own warm
    index registry), result caching is off so every round re-executes
    the join, and rounds interleave the configurations so drift hits
    them equally.
    """
    query, database = triangle_skew_instance(size)
    tracer = Tracer()
    engines = {
        "baseline": Engine(database=database, cache_results=False,
                           metrics=False),
        "disabled": Engine(database=database, cache_results=False),
        "enabled": Engine(database=database, cache_results=False,
                          tracer=tracer, collect_operations=True),
    }
    expected = None
    for engine in engines.values():  # warm plans and indexes
        result = engine.execute(query)
        expected = len(result) if expected is None else expected
        if len(result) != expected:
            raise AssertionError("configurations disagree on the result")

    samples: dict[str, list[float]] = {name: [] for name in engines}
    for _ in range(rounds):
        tracer.reset()  # spans from prior rounds are not this round's cost
        for name, engine in engines.items():
            started = time.perf_counter()
            engine.execute(query)
            samples[name].append((time.perf_counter() - started) * 1000.0)
    return {name: statistics.median(times)
            for name, times in samples.items()}


def disabled_ratio(size: int, rounds: int) -> float:
    medians = measure(size, rounds)
    return medians["disabled"] / medians["baseline"]


@pytest.mark.experiment("trace_overhead")
def test_disabled_tracer_overhead_is_negligible():
    """A null tracer + idle metrics must stay within 5% of no observability."""
    ratios = []
    for _ in range(ATTEMPTS):
        ratio = disabled_ratio(size=150, rounds=9)
        if ratio <= TARGET_RATIO:
            return
        ratios.append(ratio)
    raise AssertionError(
        f"disabled-tracer ratio exceeded {TARGET_RATIO} in "
        f"{ATTEMPTS} attempts: {[f'{r:.3f}' for r in ratios]}"
    )


def run(sizes=(150, 300), rounds: int = 15) -> bool:
    print("observability overhead — skewed triangle, result cache off, "
          "median per-query ms")
    print(f"{'size':>6s} {'baseline':>10s} {'disabled':>10s} "
          f"{'enabled':>10s} {'off ratio':>10s} {'on ratio':>9s}")
    ok = True
    for size in sizes:
        for attempt in range(ATTEMPTS):
            medians = measure(size, rounds)
            off_ratio = medians["disabled"] / medians["baseline"]
            if off_ratio <= TARGET_RATIO or attempt == ATTEMPTS - 1:
                break
        ok = ok and off_ratio <= TARGET_RATIO
        on_ratio = medians["enabled"] / medians["baseline"]
        print(f"{size:6d} {medians['baseline']:10.3f} "
              f"{medians['disabled']:10.3f} {medians['enabled']:10.3f} "
              f"{off_ratio:9.3f}x {on_ratio:8.3f}x")
    print(f"gate: disabled-tracer ratio <= {TARGET_RATIO} "
          f"(enabled tracing+counting is opt-in and reported only)")
    return ok


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    return 0 if run(sizes=(120,) if quick else (150, 300),
                    rounds=9 if quick else 15) else 1


if __name__ == "__main__":
    sys.exit(main())
