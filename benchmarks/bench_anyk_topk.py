"""Any-k ranked enumeration vs drain-and-heap on an ordered top-k query.

``ORDER BY ... LIMIT k`` used to drain the whole join and heap-select:
top-1 paid the same as top-everything.  The any-k ranked mode enumerates
results in sort order straight out of the join — the ranking-semiring
best-suffix bounds plus a priority frontier (Tziavelis et al., "Optimal
Join Algorithms Meet Top-k") — so the work is the bottom-up existence /
bound DP plus k tie classes, not the join.

The instance is the skewed acyclic chain of the aggregate-pushdown
benchmark: every A sees every B and one hub B carries almost all of S's
fan-out, so the full-head join has many (B, A) prefixes that drain must
enumerate before its heap sees a single row, while any-k pays one
saturating existence check per candidate sort key.  The gap is recorded
as the ratio of join search nodes at k ∈ {1, 10, 100} (a deterministic
operation count; wall-clock is printed for the record but does not gate —
shared CI runners are noisy).  The emitted ranked prefixes are asserted
identical across both modes and all any-k-capable executors.

Run standalone (exit code gates on the k=1 operation-count ratio)::

    python benchmarks/bench_anyk_topk.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_anyk_topk.py -q
"""

from __future__ import annotations

import sys
import time

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    import os
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.joins.instrumentation import OperationCounter
from repro.relational.database import Database
from repro.relational.relation import Relation

#: Minimum acceptable drain/any-k search-node ratio at k = 1.
TARGET_RATIO = 10.0

QUERY = "Q(A, B, C) :- R(A,B), S(B,C) ORDER BY A, B"


def skewed_topk_instance(groups: int, hubs: int = 40,
                         hub_fanout: int = 250) -> Database:
    """Every A joins every B; hub B=0 holds almost all of S's fan-out."""
    r = Relation("R", ("a", "b"),
                 [(a, b) for a in range(groups) for b in range(hubs)])
    s_rows = [(0, c) for c in range(hub_fanout)]
    s_rows += [(b, c) for b in range(1, hubs) for c in range(2)]
    s = Relation("S", ("b", "c"), s_rows)
    return Database([r, s])


def measure(groups: int, k: int) -> tuple[float, float, float]:
    """(drain/any-k search-node ratio, anyk ms, drain ms) at LIMIT ``k``.

    Asserts that both modes emit the identical ranked prefix, on every
    executor that supports each mode.
    """
    database = skewed_topk_instance(groups)
    engine = Engine(database=database, cache_results=False)
    query = f"{QUERY} LIMIT {k}"

    anyk_counter = OperationCounter()
    started = time.perf_counter()
    anyk = list(engine.stream(query, mode="generic", ranked_mode="anyk",
                              counter=anyk_counter))
    anyk_ms = (time.perf_counter() - started) * 1000.0

    drain_counter = OperationCounter()
    started = time.perf_counter()
    drain = list(engine.stream(query, mode="generic", ranked_mode="drain",
                               counter=drain_counter))
    drain_ms = (time.perf_counter() - started) * 1000.0

    if anyk != drain:
        raise AssertionError("any-k and drain ranked prefixes disagree")
    for mode, ranked_mode in (("leapfrog", "anyk"), ("yannakakis", "anyk"),
                              ("binary", "drain"), ("naive", "drain")):
        other = list(engine.stream(query, mode=mode, ranked_mode=ranked_mode))
        if other != drain:
            raise AssertionError(
                f"{mode}/{ranked_mode} disagrees on {query}")

    ratio = drain_counter.search_nodes / max(anyk_counter.search_nodes, 1)
    return ratio, anyk_ms, drain_ms


@pytest.mark.experiment("anyk_topk")
@pytest.mark.parametrize("groups", [60])
def test_anyk_beats_drain_and_heap_for_top1(groups):
    """Top-1 must cost the DP + one tie class, not the whole join."""
    ratio, _anyk_ms, _drain_ms = measure(groups, k=1)
    assert ratio >= TARGET_RATIO


def run(group_counts=(60, 120)) -> bool:
    print("any-k ranked enumeration vs drain-and-heap — skewed acyclic "
          f"top-k, query: {QUERY} LIMIT k")
    print(f"{'groups':>8s} {'k':>5s} {'anyk (ms)':>11s} {'drain (ms)':>12s} "
          f"{'node ratio':>11s}")
    ok = True
    for groups in group_counts:
        for k in (1, 10, 100):
            ratio, anyk_ms, drain_ms = measure(groups, k)
            if k == 1:
                ok = ok and ratio >= TARGET_RATIO
            print(f"{groups:8d} {k:5d} {anyk_ms:11.2f} {drain_ms:12.2f} "
                  f"{ratio:10.1f}x")
    print(f"target: >= {TARGET_RATIO:.0f}x fewer search nodes for k=1")
    return ok


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    return 0 if run(group_counts=(60,) if quick else (60, 120)) else 1


if __name__ == "__main__":
    sys.exit(main())
