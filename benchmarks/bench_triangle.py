"""Benchmark of the triangle scaling experiment (E4): WCOJ engines vs the
best pairwise plan on skew and AGM-tight instances.

The operation-count series (the paper's asymptotic claim) is printed as a
table; pytest-benchmark additionally records wall-clock for each engine on a
fixed mid-size instance.
"""

import pytest

from repro.datagen.worstcase import triangle_agm_tight_instance, triangle_skew_instance
from repro.experiments.runner import fit_exponent
from repro.experiments.triangle_scaling import run_triangle_scaling
from repro.joins.binary_plans import best_left_deep_execution
from repro.joins.generic_join import generic_join
from repro.joins.leapfrog import leapfrog_triejoin
from repro.joins.triangle import triangle_algorithm1, triangle_algorithm2


@pytest.mark.experiment("E4")
def test_triangle_scaling_skew(benchmark, show_table):
    table = benchmark(run_triangle_scaling, sizes=(100, 200, 400), family="skew")
    show_table(table)
    ns = [float(v) for v in table.column("N")]
    pairwise_exp = fit_exponent(
        ns, [float(v) for v in table.column("best pairwise max intermediate")])
    wcoj_exp = fit_exponent(ns, [float(v) for v in table.column("generic join ops")])
    assert pairwise_exp > 1.7  # quadratic blow-up
    assert wcoj_exp < 1.3      # near-linear WCOJ work


@pytest.mark.experiment("E4")
def test_triangle_scaling_agm_tight(benchmark, show_table):
    table = benchmark(run_triangle_scaling, sizes=(100, 225, 400), family="agm_tight")
    show_table(table)
    ns = [float(v) for v in table.column("N")]
    output_exp = fit_exponent(ns, [float(v) for v in table.column("output")])
    assert 1.3 < output_exp < 1.7  # Theta(N^{3/2}) output


SKEW_QUERY, SKEW_DB = triangle_skew_instance(400)
TIGHT_QUERY, TIGHT_DB = triangle_agm_tight_instance(400)


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("engine", ["generic_join", "leapfrog", "algorithm1",
                                    "algorithm2", "best_pairwise"])
def test_triangle_engine_wall_clock_skew(benchmark, engine):
    r, s, t = SKEW_DB["R"], SKEW_DB["S"], SKEW_DB["T"]
    runners = {
        "generic_join": lambda: generic_join(SKEW_QUERY, SKEW_DB),
        "leapfrog": lambda: leapfrog_triejoin(SKEW_QUERY, SKEW_DB),
        "algorithm1": lambda: triangle_algorithm1(r, s, t),
        "algorithm2": lambda: triangle_algorithm2(r, s, t),
        "best_pairwise": lambda: best_left_deep_execution(SKEW_QUERY, SKEW_DB).result,
    }
    result = benchmark(runners[engine])
    assert len(result) > 0


@pytest.mark.experiment("E4")
@pytest.mark.parametrize("engine", ["generic_join", "leapfrog", "algorithm1"])
def test_triangle_engine_wall_clock_tight(benchmark, engine):
    r, s, t = TIGHT_DB["R"], TIGHT_DB["S"], TIGHT_DB["T"]
    runners = {
        "generic_join": lambda: generic_join(TIGHT_QUERY, TIGHT_DB),
        "leapfrog": lambda: leapfrog_triejoin(TIGHT_QUERY, TIGHT_DB),
        "algorithm1": lambda: triangle_algorithm1(r, s, t),
    }
    result = benchmark(runners[engine])
    assert len(result) == 8000
