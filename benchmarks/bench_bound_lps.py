"""Benchmark of the bound LPs (experiment E8): modular vs polymatroid LP
optima and solve times as the variable count grows."""

import pytest

from repro.bounds.modular import modular_bound
from repro.bounds.polymatroid import polymatroid_bound
from repro.experiments.bound_lps import random_acyclic_dc, run_bound_lps


@pytest.mark.experiment("E8")
def test_bound_lps_agree_for_acyclic(benchmark, show_table):
    table = benchmark(run_bound_lps, ns=(3, 4, 5, 6), constraints_per_n=4, seed=0)
    show_table(table)
    acyclic_rows = [r for r in table.rows if r["acyclic"]]
    assert all(r["equal"] for r in acyclic_rows)


@pytest.mark.experiment("E8")
@pytest.mark.parametrize("n", [4, 6, 8])
def test_modular_lp_solve_time(benchmark, n):
    dc = random_acyclic_dc(n, num_constraints=n, seed=n)
    result = benchmark(modular_bound, dc)
    assert result.log2_bound >= 0


@pytest.mark.experiment("E8")
@pytest.mark.parametrize("n", [4, 6, 8])
def test_polymatroid_lp_solve_time(benchmark, n):
    dc = random_acyclic_dc(n, num_constraints=n, seed=n)
    result = benchmark(polymatroid_bound, dc)
    assert result.log2_bound >= 0
