"""Ablation benchmark: hash-probe vs leapfrog (sorted-seek) intersections.

This is design decision #1 from DESIGN.md: both intersection strategies
satisfy the paper's O~(min size) requirement, and Generic-Join vs Leapfrog
Triejoin differ only in which one they use.  The benchmark measures the two
primitives head-to-head on balanced and skewed inputs, and the two engines
end-to-end on the same triangle instance.
"""

import random

import pytest

from repro.datagen.worstcase import triangle_agm_tight_instance, triangle_skew_instance
from repro.joins.generic_join import generic_join
from repro.joins.leapfrog import leapfrog_intersect, leapfrog_triejoin
from repro.relational.operators import intersect_sorted


def _sorted_lists(sizes, overlap, seed):
    rng = random.Random(seed)
    universe = list(range(max(sizes) * 4))
    common = rng.sample(universe, overlap)
    lists = []
    for i, size in enumerate(sizes):
        extra = rng.sample(universe, size)
        lists.append(sorted(set(common) | set(extra)))
    return lists


BALANCED = _sorted_lists([2000, 2000, 2000], overlap=200, seed=1)
SKEWED = _sorted_lists([50, 5000, 5000], overlap=20, seed=2)


@pytest.mark.experiment("ablation")
@pytest.mark.parametrize("shape,lists", [("balanced", BALANCED), ("skewed", SKEWED)])
def test_hash_probe_intersection(benchmark, shape, lists):
    result = benchmark(intersect_sorted, lists)
    assert len(result) >= 1


@pytest.mark.experiment("ablation")
@pytest.mark.parametrize("shape,lists", [("balanced", BALANCED), ("skewed", SKEWED)])
def test_leapfrog_intersection(benchmark, shape, lists):
    result = benchmark(leapfrog_intersect, lists)
    assert len(result) >= 1


@pytest.mark.experiment("ablation")
@pytest.mark.parametrize("family", ["skew", "agm_tight"])
def test_generic_join_end_to_end(benchmark, family):
    make = triangle_skew_instance if family == "skew" else triangle_agm_tight_instance
    query, database = make(300)
    result = benchmark(generic_join, query, database)
    assert len(result) > 0


@pytest.mark.experiment("ablation")
@pytest.mark.parametrize("family", ["skew", "agm_tight"])
def test_leapfrog_end_to_end(benchmark, family):
    make = triangle_skew_instance if family == "skew" else triangle_agm_tight_instance
    query, database = make(300)
    result = benchmark(leapfrog_triejoin, query, database)
    assert len(result) > 0
