"""Hybrid heavy/light strategy vs the pure engines on a skewed 4-cycle.

The workload is the survey's "skew strikes back" regime arranged as a
4-cycle ``Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D), U(D,A)``: a Zipf-decayed
sequence of hub values of ``A`` is heavy in both relations that touch
``A``, every hub's ``R``-neighborhood fans through ``S`` into a small
``C``-pool, and the cycle almost never closes for hubs because ``T``
emits odd ``D`` values while the hubs' ``U``-tuples carry even ones
(value-disjoint neighborhoods — the adversarial arrangement that degree
statistics alone cannot see).  A sprinkle of light ``A`` values with
genuine cycles keeps the output non-empty.

Every pure strategy pays for the hubs:

* **generic/leapfrog** ground out the full hub expansion — for each hub
  binding ``A=a`` they walk ``deg(a) * |S[b]|`` partial tuples and pay an
  intersection at ``D`` per one, only to find it empty;
* **binary** materializes the ``R |x| S |x| T`` chain before ``U`` can
  prune it.

The hybrid plan partitions on ``A`` and runs each heavy key as a
*residual* Yannakakis sub-plan: binding ``A=a`` leaves the 2-path
``S(B,C), T(C,D)`` with unary gates from the key's ``R``/``U`` buckets,
so a hub costs a couple of linear passes instead of its output-free
product expansion.  The CI gate requires the hybrid to do **>= 5x fewer
operations** (tuples scanned + emitted + hash + intersection + search
work, the engines' shared currency) than the best pure strategy at Zipf
exponent 1.5, with bit-identical rows asserted on every measurement.

Results land in ``BENCH_hybrid.json`` at the repo root.  Run standalone
(exit code gates on the ratio)::

    python benchmarks/bench_hybrid_skew.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_hybrid_skew.py -q
"""

from __future__ import annotations

import json
import os
import random
import sys

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.joins.instrumentation import OperationCounter
from repro.relational.database import Database
from repro.relational.relation import Relation

#: Minimum acceptable best-pure/hybrid operation-count ratio (CI gate).
TARGET_RATIO = 5.0

#: The Zipf exponent the gate is evaluated at.
GATE_EXPONENT = 1.5

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_hybrid.json")

CYCLE_QUERY = "Q(A,B,C,D) :- R(A,B), S(B,C), T(C,D), U(D,A)"

#: Instance knobs (see :func:`skew_cycle_instance`).
N_HUBS = 12          # heavy A values
TOP_DEGREE = 100     # R-degree of the rank-1 hub
MIN_DEGREE = 40      # clamp: every hub stays above the |R|^(1/2) threshold
B_POOL = 100         # distinct B values hubs fan into
Q_S = 10             # S-fanout per B (and the size of the C pool)
T_DEGREE = 500       # T-fanout per C, and U-degree per hub
N_LIGHT = 80         # light A values with genuine cycles


def zipf_degrees(exponent: float, n: int, top: int, floor: int) -> list[int]:
    """Hub degrees decaying as rank^-(exponent - 1), clamped to ``floor``."""
    return [max(floor, int(top * (k + 1) ** (1.0 - exponent)))
            for k in range(n)]


def skew_cycle_instance(exponent: float, seed: int = 0) -> Database:
    rng = random.Random(seed)
    bs = [f"b{i}" for i in range(B_POOL)]
    cs = [f"c{i}" for i in range(Q_S)]
    even = [2 * i for i in range(T_DEGREE + 50)]
    odd = [2 * i + 1 for i in range(T_DEGREE + 50)]

    r, s, t, u = [], [], [], []
    for k, deg in enumerate(zipf_degrees(exponent, N_HUBS, TOP_DEGREE,
                                         MIN_DEGREE)):
        a = f"h{k}"
        for b in rng.sample(bs, deg):
            r.append((a, b))
        for d in rng.sample(even, T_DEGREE):  # even D: never meets T's odd D
            u.append((d, a))
    for b in bs:
        for c in rng.sample(cs, Q_S):
            s.append((b, c))
    for c in cs:
        for d in rng.sample(odd, T_DEGREE):
            t.append((c, d))
    for i in range(N_LIGHT):  # light keys with odd D: some cycles close
        a = f"l{i}"
        b, c, d = rng.choice(bs), rng.choice(cs), rng.choice(odd)
        r.append((a, b))
        s.append((b, c))
        t.append((c, d))
        u.append((d if rng.random() < 0.5 else rng.choice(odd), a))
    return Database([
        Relation("R", ("A", "B"), r),
        Relation("S", ("B", "C"), s),
        Relation("T", ("C", "D"), t),
        Relation("U", ("D", "A"), u),
    ])


def measure(exponent: float, modes: tuple[str, ...],
            seed: int = 0) -> dict:
    """Operation totals per forced strategy at one Zipf exponent.

    Rows are checked bit-identical against the generic-join oracle on
    every run — a speedup with wrong answers is worthless.  The ratio is
    best-pure over hybrid on :meth:`OperationCounter.total`.
    """
    database = skew_cycle_instance(exponent, seed=seed)
    ops: dict[str, int] = {}
    oracle = None
    for mode in modes:
        engine = Engine(database, cache_results=False)
        counter = OperationCounter()
        result = engine.execute(CYCLE_QUERY, mode=mode, counter=counter)
        ops[mode] = counter.total()
        rows = sorted(result.tuples)
        if mode == "generic":
            oracle = rows
        elif oracle is not None and rows != oracle:
            raise AssertionError(
                f"exponent {exponent}: {mode} rows diverged from the "
                f"generic oracle")
    best_pure = min(count for mode, count in ops.items() if mode != "hybrid")
    return {
        "exponent": exponent,
        "sizes": {name: len(database.get(name))
                  for name in ("R", "S", "T", "U")},
        "rows": len(oracle),
        "ops": ops,
        "best_pure_ops": best_pure,
        "ratio": best_pure / max(ops["hybrid"], 1),
    }


#: Full sweep vs CI smoke.  The quick run drops binary (its chain
#: materialization is the *worst* pure strategy here — it can never be
#: the ``min`` the gate compares against — and it dominates wall clock)
#: and measures only the gate exponent.
FULL_MODES = ("generic", "hybrid", "leapfrog", "binary")
QUICK_MODES = ("generic", "hybrid", "leapfrog")
FULL_EXPONENTS = (1.1, 1.5, 2.0)
QUICK_EXPONENTS = (GATE_EXPONENT,)


@pytest.mark.experiment("hybrid-skew")
def test_hybrid_beats_best_pure_by_5x():
    """At Zipf exponent 1.5 the hybrid must do >=5x fewer operations
    than the best pure strategy, with bit-identical rows (asserted
    inside measure)."""
    entry = measure(GATE_EXPONENT, QUICK_MODES)
    assert entry["ratio"] >= TARGET_RATIO, (
        f"hybrid {entry['ops']['hybrid']} ops vs best pure "
        f"{entry['best_pure_ops']}: {entry['ratio']:.1f}x < "
        f"{TARGET_RATIO:.0f}x")


def run(exponents=FULL_EXPONENTS, modes=FULL_MODES,
        emit_json: bool = True) -> bool:
    print("hybrid heavy/light vs pure strategies — operation counts on "
          "the skewed 4-cycle, bit-identical output asserted")
    header = f"{'exponent':>8s} {'rows':>6s}"
    for mode in modes:
        header += f" {mode:>10s}"
    print(header + f" {'ratio':>7s}")
    entries = []
    ok = True
    for exponent in exponents:
        entry = measure(exponent, modes)
        entries.append(entry)
        if exponent == GATE_EXPONENT:
            ok = ok and entry["ratio"] >= TARGET_RATIO
        line = f"{exponent:8.1f} {entry['rows']:6d}"
        for mode in modes:
            line += f" {entry['ops'][mode]:10d}"
        print(line + f" {entry['ratio']:6.1f}x")
    print(f"target: >= {TARGET_RATIO:.0f}x fewer operations than the best "
          f"pure strategy at exponent {GATE_EXPONENT}")
    if emit_json:
        payload = {
            "benchmark": "hybrid_skew",
            "query": CYCLE_QUERY,
            "target_ratio": TARGET_RATIO,
            "gate_exponent": GATE_EXPONENT,
            "entries": entries,
        }
        with open(BENCH_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {os.path.normpath(BENCH_PATH)}")
    return ok


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    if quick:
        return 0 if run(exponents=QUICK_EXPONENTS, modes=QUICK_MODES,
                        emit_json=False) else 1
    return 0 if run() else 1


if __name__ == "__main__":
    sys.exit(main())
