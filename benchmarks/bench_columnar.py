"""Columnar backend vs the pure-Python oracle: wall-clock speedup gate.

Two workloads where the per-tuple Python constant dominates:

* **triangle** — the skewed ("star") triangle instance, full enumeration:
  pairwise joins are Omega(n^2/4) while the output is O(n), so both
  backends run the same worst-case-optimal plan and the measured gap is
  pure representation (sorted NumPy columns + galloping intersection vs
  per-tuple dict probing).
* **star** — a skewed 3-arm star with head projection ``Q(A)``: the
  existential tail exercises the component-factorized boolean eliminator,
  vectorized over frontier runs on the columnar side.

Both backends run the *same* generic-join plan (strategy held fixed) and
must return bit-identical rows in bit-identical order — asserted on every
measurement, never trusted.  This is the repo's first wall-clock (not
node-count) gate: the columnar backend exists purely for constant-factor
speed, so constants are what it is held to.  Wall-clock on shared CI
runners is noisy, which the gate absorbs by demanding a margin (>=10x)
far above the noise floor.

Results are written to ``BENCH_columnar.json`` at the repo root (triangle
+ star, python vs columnar, cold vs warm layout) so future PRs have a
perf trajectory to regress against.

Run standalone (exit code gates on the speedup)::

    python benchmarks/bench_columnar.py [--quick]

or through pytest::

    python -m pytest benchmarks/bench_columnar.py -q
"""

from __future__ import annotations

import json
import os
import random
import sys
import time

import pytest

try:
    from repro.engine import Engine
except ImportError:  # running standalone from a checkout without install
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    from repro.engine import Engine

from repro.datagen.worstcase import triangle_skew_instance
from repro.relational.database import Database
from repro.relational.relation import Relation

#: Minimum acceptable python/columnar wall-clock ratio (CI gate).
TARGET_SPEEDUP = 10.0

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_columnar.json")

TRIANGLE_QUERY = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
STAR_QUERY = "Q(A) :- R1(A,B1), R2(A,B2), R3(A,B3)"


def star_skew_instance(n: int) -> Database:
    """Three arms around a shared key with one heavy hub.

    Key 0 carries ~n/2 rows per arm, the rest are singletons: the
    projection ``Q(A)`` forces the existential eliminator to prove one
    witness per surviving key while the hub key alone would enumerate
    Omega(n^3/8) full bindings if projection were done by drain-and-dedup.
    """
    m = max(1, n // 2)
    relations = []
    for i, column in enumerate(("B1", "B2", "B3")):
        rng = random.Random(1000 * i + n)
        rows = [(0, j) for j in range(1, m + 1)]
        rows += [(k, rng.randrange(m)) for k in range(1, m + 1)]
        relations.append(Relation(f"R{i + 1}", ("A", column), sorted(set(rows))))
    return Database(relations)


def _timed(engine: Engine, query: str, **kwargs) -> tuple[float, list]:
    started = time.perf_counter()
    result = engine.execute(query, mode="generic", **kwargs)
    return time.perf_counter() - started, list(result.tuples)


def _best_of(repeats: int, engine: Engine, query: str,
             expected: list, label: str, **kwargs) -> float:
    """Minimum wall-clock over ``repeats`` runs, rows checked every time.

    Single-shot wall clock on a shared runner is dominated by scheduler
    and allocator noise; the minimum is the standard robust estimator of
    the actual cost.
    """
    best = float("inf")
    for _ in range(repeats):
        seconds, rows = _timed(engine, query, **kwargs)
        if rows != expected:
            raise AssertionError(
                f"{label}: rows diverged from the python oracle")
        best = min(best, seconds)
    return best


def measure(workload: str, n: int, repeats: int = 3) -> dict:
    """One workload at one size: python warm vs columnar cold and warm.

    The python run is measured with its tries already built (warm-up run
    first), the columnar side both cold (layout materialization included,
    single shot by definition) and warm — the steady-state comparison the
    dispatcher's pricing assumes.  Warm figures are best-of-``repeats``;
    bit-identity of rows and order is asserted on every run.
    """
    if workload == "triangle":
        query = TRIANGLE_QUERY
        _q, database = triangle_skew_instance(n)
    else:
        query = STAR_QUERY
        database = star_skew_instance(n)
    engine = Engine(database=database, cache_results=False)

    _warmup_s, expected = _timed(engine, query)  # builds the tries
    python_s = _best_of(repeats, engine, query, expected,
                        f"{workload}[{n}] python")
    cold_s, cold_rows = _timed(engine, query, backend="columnar")
    if cold_rows != expected:
        raise AssertionError(
            f"{workload}[{n}]: columnar rows diverged from the python oracle")
    warm_s = _best_of(repeats, engine, query, expected,
                      f"{workload}[{n}] columnar", backend="columnar")

    return {
        "workload": workload,
        "n": n,
        "rows": len(expected),
        "python_ms": python_s * 1000.0,
        "columnar_cold_ms": cold_s * 1000.0,
        "columnar_warm_ms": warm_s * 1000.0,
        "speedup_cold": python_s / max(cold_s, 1e-9),
        "speedup_warm": python_s / max(warm_s, 1e-9),
    }


#: Per-workload sizes.  The triangle's python cost grows ~quadratically
#: (pairwise skew), the star's linearly — the star needs larger n before
#: the columnar backend's fixed per-query overhead amortizes away.
FULL_SIZES = {"triangle": (4000, 10000), "star": (15000, 30000)}
QUICK_SIZES = {"triangle": (3000,), "star": (15000,)}


@pytest.mark.experiment("columnar")
@pytest.mark.parametrize("workload,n", [("triangle", 2500), ("star", 15000)])
def test_columnar_wall_clock_speedup(workload, n):
    """The columnar backend must beat warm python by >=10x wall-clock,
    returning bit-identical rows (asserted inside measure)."""
    entry = measure(workload, n)
    assert entry["speedup_warm"] >= TARGET_SPEEDUP, (
        f"{workload}[{n}]: {entry['speedup_warm']:.1f}x < "
        f"{TARGET_SPEEDUP:.0f}x (python {entry['python_ms']:.1f} ms, "
        f"columnar warm {entry['columnar_warm_ms']:.1f} ms)")


def run(sizes=FULL_SIZES, emit_json: bool = True) -> bool:
    print("columnar backend vs python oracle — wall clock, same "
          "generic-join plan, bit-identical output asserted")
    print(f"{'workload':>9s} {'n':>7s} {'rows':>7s} {'python (ms)':>12s} "
          f"{'cold (ms)':>10s} {'warm (ms)':>10s} {'speedup':>8s}")
    entries = []
    ok = True
    for workload in ("triangle", "star"):
        for n in sizes[workload]:
            entry = measure(workload, n)
            entries.append(entry)
            ok = ok and entry["speedup_warm"] >= TARGET_SPEEDUP
            print(f"{workload:>9s} {n:7d} {entry['rows']:7d} "
                  f"{entry['python_ms']:12.1f} "
                  f"{entry['columnar_cold_ms']:10.1f} "
                  f"{entry['columnar_warm_ms']:10.1f} "
                  f"{entry['speedup_warm']:7.1f}x")
    print(f"target: >= {TARGET_SPEEDUP:.0f}x wall-clock on the warm path")
    if emit_json:
        payload = {
            "benchmark": "columnar_backend",
            "target_speedup": TARGET_SPEEDUP,
            "queries": {"triangle": TRIANGLE_QUERY, "star": STAR_QUERY},
            "entries": entries,
        }
        with open(BENCH_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {os.path.normpath(BENCH_PATH)}")
    return ok


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    return 0 if run(sizes=QUICK_SIZES if quick else FULL_SIZES,
                    emit_json=not quick) else 1


if __name__ == "__main__":
    sys.exit(main())
