#!/usr/bin/env python3
"""Exploring output-size bounds under degree constraints.

An OLAP-style scenario: a fact table with key/foreign-key lookups into
dimension tables, plus per-step fanout statistics.  The example shows how the
three bound machineries relate (AGM vs modular vs polymatroid), how
functional dependencies tighten the bound, what happens when constraints form
a cycle, and how Algorithm 3 evaluates the query within the bound.

Run with:  python examples/bounds_explorer.py
"""

from repro import DegreeConstraint, DegreeConstraintSet, OperationCounter
from repro.bounds.modular import modular_bound, modular_bound_dual
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.acyclify import acyclify, all_variables_bound
from repro.experiments.acyclic_dc import chain_instance
from repro.joins.backtracking import backtracking_join
from repro.joins.generic_join import generic_join


def main() -> None:
    # An "orders -> customers -> regions" style chain with fanout statistics:
    # R(A, B) is the fact table, deg_S(C | B) <= 3 and deg_T(D | C) <= 3 are
    # the lookup fanouts the catalog knows.
    query, database, dc = chain_instance(num_r=120, fanout=3, seed=11)
    print(f"query: {query}")
    print(f"constraints: {dc}\n")

    # 1. The three bounds.
    modular = modular_bound(dc)
    dual = modular_bound_dual(dc)
    poly = polymatroid_bound(dc)
    print("bounds with degree constraints (acyclic):")
    print(f"  modular LP (54):     {modular.bound:,.0f}  "
          f"({modular.num_lp_variables} vars, {modular.num_lp_constraints} rows)")
    print(f"  dual LP (57):        {dual.bound:,.0f}")
    print(f"  polymatroid LP (68): {poly.bound:,.0f}  "
          f"({poly.num_lp_variables} vars, {poly.num_lp_constraints} rows)")
    print("  (Proposition 4.4: all three agree because the constraints are acyclic)\n")

    # 2. Adding an FD tightens the bound further.
    with_fd = DegreeConstraintSet(dc.variables, dc.constraints)
    with_fd.add(DegreeConstraint.functional_dependency(("B",), ("C",), guard="S"))
    print(f"after adding the FD B -> C: bound drops to "
          f"{polymatroid_bound(with_fd).bound:,.0f}\n")

    # 3. A cyclic constraint set and its Proposition 5.2 weakening.
    cyclic = DegreeConstraintSet(
        ("A", "B", "C", "D"),
        [
            DegreeConstraint.cardinality(("A",), 100, guard="R"),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=4, guard="S"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=4, guard="T"),
            DegreeConstraint(x=frozenset("C"), y=frozenset({"A", "C", "D"}), bound=4,
                             guard="W"),
        ],
    )
    print(f"the paper's query (63) constraints are cyclic: acyclic={cyclic.is_acyclic()}, "
          f"bounded={all_variables_bound(cyclic)}")
    weakened = acyclify(cyclic)
    print(f"after the Proposition 5.2 weakening: acyclic={weakened.is_acyclic()}, "
          f"bound={polymatroid_bound(weakened).bound:,.0f}\n")

    # 4. Algorithm 3 evaluates within the bound.
    counter = OperationCounter()
    output = backtracking_join(query, database, dc, counter=counter)
    expected = generic_join(query, database)
    print("Algorithm 3 (backtracking search for acyclic constraints):")
    print(f"  output tuples:      {len(output):,} (matches Generic-Join: {output == expected})")
    print(f"  search-tree nodes:  {counter.search_nodes:,}")
    print(f"  worst-case bound:   {modular.bound:,.0f} tuples")


if __name__ == "__main__":
    main()
