#!/usr/bin/env python3
"""Aggregates and the acyclic/cyclic divide.

Two follow-ups to the quickstart that exercise the rest of the public API:

1. *Aggregation without materialization* — count triangles globally and per
   vertex with the FAQ-style counting traversal (same worst-case-optimal
   budget as Generic-Join, no output materialized).
2. *The acyclic/cyclic divide* — for an acyclic chain query, Yannakakis'
   algorithm is output-linear and the optimizer prefers classical plans; for
   the cyclic triangle it switches to WCOJ.  Width parameters (fractional
   hypertree width) quantify the divide.

Run with:  python examples/aggregation_and_acyclic.py
"""

from repro import Database, OperationCounter, Relation
from repro.datagen.graphs import social_graph, undirected_closure
from repro.joins.counting import count_join, group_count
from repro.joins.generic_join import generic_join
from repro.joins.yannakakis import yannakakis
from repro.query.atoms import Atom, ConjunctiveQuery, path_query, triangle_query
from repro.query.widths import fractional_hypertree_width
from repro.query.decomposition import is_alpha_acyclic


def main() -> None:
    edges = undirected_closure(social_graph(num_vertices=250, average_degree=6, seed=13))
    triangle_db = Database([
        Relation("R", ("A", "B"), edges.tuples),
        Relation("S", ("B", "C"), edges.tuples),
        Relation("T", ("A", "C"), edges.tuples),
    ])
    query = triangle_query()

    # 1. Counting without materializing.
    count_counter = OperationCounter()
    total = count_join(query, triangle_db, counter=count_counter)
    materialize_counter = OperationCounter()
    materialized = generic_join(query, triangle_db, counter=materialize_counter)
    print("triangle counting on a social graph")
    print(f"  count_join:    {total:,} triangles, {count_counter.total():,} operations")
    print(f"  generic_join:  {len(materialized):,} triangles, "
          f"{materialize_counter.total():,} operations (materialized)")

    per_vertex = group_count(query, triangle_db, group_by=("A",))
    top = sorted(per_vertex.items(), key=lambda kv: -kv[1])[:5]
    print("  top-5 vertices by triangle participation:")
    for (vertex,), count in top:
        print(f"    vertex {vertex}: {count} triangles")
    print()

    # 2. The acyclic/cyclic divide.
    chain = ConjunctiveQuery([
        Atom("Follows", ("A", "B")), Atom("Posts", ("B", "C")), Atom("Tags", ("C", "D")),
    ])
    chain_db = Database([
        Relation("Follows", ("A", "B"), edges.tuples),
        Relation("Posts", ("B", "C"), [(v, v % 17) for v, _ in edges.tuples]),
        Relation("Tags", ("C", "D"), [(c, c % 5) for c in range(17)]),
    ])
    for name, q in (("triangle", query), ("follows->posts->tags chain", chain),
                    ("length-2 path", path_query(2))):
        h = q.hypergraph()
        print(f"query: {name}")
        print(f"  alpha-acyclic:             {is_alpha_acyclic(h)}")
        print(f"  fractional hypertree width: {fractional_hypertree_width(h):.2f}")
    print()

    yk_counter = OperationCounter()
    chain_result = yannakakis(chain, chain_db, counter=yk_counter)
    gj_counter = OperationCounter()
    generic_join(chain, chain_db, counter=gj_counter)
    print("acyclic chain query evaluation:")
    print(f"  Yannakakis:   {len(chain_result):,} tuples, {yk_counter.total():,} operations")
    print(f"  Generic-Join: {len(chain_result):,} tuples, {gj_counter.total():,} operations")
    print("  (both are fine here; the separation only appears on cyclic queries)")


if __name__ == "__main__":
    main()
