#!/usr/bin/env python3
"""Quickstart: count triangles in a graph with a worst-case optimal join.

This walks through the core public API in five steps:

1. build relations and a database,
2. write the triangle query (the paper's running example),
3. compute the AGM worst-case output bound,
4. evaluate the query with Generic-Join and Leapfrog Triejoin,
5. compare against the traditional pairwise (binary-join) plan.

Run with:  python examples/quickstart.py
"""

from repro import (
    Database,
    Engine,
    OperationCounter,
    Q,
    Relation,
    agm_bound,
    count,
    generic_join,
    leapfrog_triejoin,
    parse_query,
)
from repro.datagen.graphs import social_graph, undirected_closure
from repro.joins.binary_plans import best_left_deep_execution


def main() -> None:
    # 1. A small synthetic social network; R = S = T = the edge relation,
    #    which is exactly the triangle-counting setting of the paper.
    edges = undirected_closure(social_graph(num_vertices=300, average_degree=6, seed=7))
    database = Database([
        Relation("R", ("A", "B"), edges.tuples),
        Relation("S", ("B", "C"), edges.tuples),
        Relation("T", ("A", "C"), edges.tuples),
    ])
    print(f"graph edges: {len(edges)} (each relation has {len(database['R'])} tuples)")

    # 2. The triangle query, written in datalog style.
    query = parse_query("Q(A, B, C) :- R(A, B), S(B, C), T(A, C).")
    print(f"query: {query}")

    # 3. The AGM bound: no output can exceed sqrt(|R| * |S| * |T|).
    bound = agm_bound(query, database)
    print(f"AGM bound: {bound.bound:,.0f} tuples "
          f"(optimal fractional edge cover {bound.cover})")

    # 4. Worst-case optimal evaluation.
    gj_counter = OperationCounter()
    triangles = generic_join(query, database, counter=gj_counter)
    lf_counter = OperationCounter()
    leapfrog_triejoin(query, database, counter=lf_counter)
    print(f"triangles found: {len(triangles)}")
    print(f"Generic-Join work:      {gj_counter.total():,} operations")
    print(f"Leapfrog Triejoin work: {lf_counter.total():,} operations")

    # 5. The traditional baseline: the best pairwise join plan.
    pairwise = best_left_deep_execution(query, database)
    print(f"best pairwise plan:     {pairwise.counter.total():,} operations, "
          f"largest intermediate {pairwise.max_intermediate:,} tuples")
    print("(the WCOJ engines never materialize an intermediate at all)")

    # 6. The unified declarative surface through a persistent Engine:
    #    selections pushed below the join, aggregates, and top-k results.
    engine = Engine(database=database)
    busiest = engine.execute(
        Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
         .select("A", count()).group_by("A").order_by("-count").limit(3)
    )
    print("top-3 triangle-corner vertices (vertex, triangles through it):")
    for row in engine.stream(
            Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
             .select("A", count()).group_by("A").order_by("-count").limit(3)):
        print(f"    {row}")
    assert len(busiest) <= 3
    constrained = engine.execute("Q(A) :- R(A,B), S(B,C), T(A,C), A < B, B < C")
    print(f"vertices starting an ordered triangle A<B<C: {len(constrained)}")


if __name__ == "__main__":
    main()
