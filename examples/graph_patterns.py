#!/usr/bin/env python3
"""Graph pattern mining: cliques, cycles and paths on a skewed social graph.

The paper's motivating workload (Section 1.1) is "in-database graph
processing": subgraph pattern queries are cyclic conjunctive queries, which
is exactly where worst-case optimal joins beat every pairwise plan.  This
example mines three patterns on the same synthetic social network and shows,
for each, the AGM bound, the WCOJ work, and the best pairwise plan's largest
intermediate result.

Run with:  python examples/graph_patterns.py
"""

from repro import Database, OperationCounter, Relation, agm_bound, generic_join
from repro.datagen.graphs import social_graph, undirected_closure
from repro.joins.binary_plans import best_left_deep_execution
from repro.joins.optimizer import choose_strategy
from repro.query.atoms import clique_query, cycle_query, path_query


def bind_pattern(query, edges) -> Database:
    """Bind every binary atom of a pattern query to the same edge relation."""
    relations = []
    for atom in query.atoms:
        relations.append(Relation(atom.relation, ("A", "B"), edges.tuples))
    return Database(relations)


def main() -> None:
    edges = undirected_closure(social_graph(num_vertices=120, average_degree=4, seed=3))
    print(f"social graph: {len(edges)} directed edges\n")

    patterns = {
        "triangle (3-clique)": clique_query(3),
        "4-cycle": cycle_query(4),
        "length-3 path": path_query(3),
    }
    for name, query in patterns.items():
        database = bind_pattern(query, edges)
        bound = agm_bound(query, database)
        choice = choose_strategy(query, database)

        counter = OperationCounter()
        matches = generic_join(query, database, counter=counter)
        pairwise = best_left_deep_execution(query, database)

        print(f"pattern: {name}")
        print(f"  hypergraph acyclic: {choice.acyclic} -> optimizer picks {choice.strategy}")
        print(f"  AGM bound:          {bound.bound:,.0f}")
        print(f"  matches:            {len(matches):,}")
        print(f"  WCOJ operations:    {counter.total():,}")
        print(f"  best pairwise plan: {pairwise.counter.total():,} operations, "
              f"max intermediate {pairwise.max_intermediate:,}")
        print()


if __name__ == "__main__":
    main()
