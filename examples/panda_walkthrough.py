#!/usr/bin/env python3
"""PANDA walkthrough: from a proof of an inequality to a query plan.

This example reproduces the paper's Example 1 / Table 2 end to end:

1. state the Shannon-flow inequality and check it is valid,
2. build (or automatically derive) the proof sequence,
3. print the Table 2 rows generated from the proof objects,
4. execute the proof sequence as a sequence of partitions and joins on a
   concrete database, and compare against Generic-Join and the bound (75).

Run with:  python examples/panda_walkthrough.py
"""

from repro.joins.generic_join import generic_join
from repro.panda.example1 import (
    example1_database,
    example1_inequality,
    example1_proof_sequence,
    example1_query,
    run_example1,
    table2_rows,
)
from repro.panda.proof_search import derive_proof_sequence


def main() -> None:
    # 1. The inequality behind the algorithm.
    inequality = example1_inequality()
    print("Shannon-flow inequality:")
    print(f"  {inequality}")
    print(f"  valid over all polymatroids: {inequality.is_valid()}\n")

    # 2. The proof sequence: the paper's hand-written one, and one found
    #    automatically by the bounded proof search.
    sequence = example1_proof_sequence()
    print(f"Table 2 proof sequence verifies: {sequence.verify()} "
          f"({len(sequence)} steps)")
    derived = derive_proof_sequence(inequality)
    print(f"automatically derived sequence: "
          f"{'found, ' + str(len(derived)) + ' steps' if derived else 'not found'}\n")

    # 3 + 4. Execute on data and regenerate Table 2.
    database = example1_database(scale=250, seed=42)
    run = run_example1(database=database)
    print("Table 2 (regenerated):")
    for row in table2_rows(run):
        print(f"  {row['name']:<14} {row['proof_step']:<34} {row['operation']:<10} "
              f"{row['action']}")
    print()
    print(f"observed statistics: {run.statistics}")
    print(f"partition threshold theta = {run.theta:.2f}")
    print(f"runtime bound (75) = {run.runtime_bound:,.0f}")
    print(f"largest intermediate materialized by PANDA = "
          f"{run.result.max_intermediate:,} tuples (within bound: "
          f"{run.result.max_intermediate <= run.runtime_bound})")
    expected = generic_join(example1_query(), database)
    print(f"output tuples = {len(run.result.output):,} "
          f"(matches Generic-Join: {run.result.output == expected})")


if __name__ == "__main__":
    main()
