"""Semiring-law property checks for every registered aggregate semiring.

In-recursion aggregation (WCOJ elimination) relies on ``plus`` being a
commutative monoid; Yannakakis' in-pass aggregation additionally relies on
the full semiring laws — associativity of ``times``, the ``one`` identity,
distributivity of ``times`` over ``plus``, and ``zero`` annihilation —
because aggregating a subtree away before joining it is exactly an
application of the distributive law.  These checks run over randomized
value samples for every semiring in the registry (including ``AVG``, the
(sum, count) product semiring registered through the pluggable path) plus
the internal boolean semiring.
"""

import random

import pytest

from repro.query.semiring import BOOLEAN, SEMIRINGS, Semiring


def _samples(semiring: Semiring, rng: random.Random) -> list:
    """Fold-carrier values: lifted column values plus the fold identity.

    ``one`` is deliberately not included: it is the *product* identity —
    the annotation of a tuple carrying no value — and only ever meets
    ``times``; the engine never feeds it to ``plus`` (projections fold
    annotations of like kind), so the monoid laws are checked on the fold
    carrier and the product laws on the product carrier below.
    """
    values = [semiring.lift(rng.randint(-20, 20)) for _ in range(12)]
    values.append(semiring.zero)
    return values


def _product_samples(semiring: Semiring, rng: random.Random) -> list:
    """Product-carrier values: the fold carrier plus the ``times`` identity."""
    return _samples(semiring, rng) + [semiring.one]


def _registered():
    items = sorted(SEMIRINGS.items())
    items.append(("bool", BOOLEAN))
    return items


@pytest.mark.parametrize("name,semiring", _registered())
class TestMonoidLaws:
    def test_plus_commutative(self, name, semiring):
        rng = random.Random(hash(name) & 0xFFFF)
        values = _samples(semiring, rng)
        for a in values:
            for b in values:
                assert semiring.plus(a, b) == semiring.plus(b, a)

    def test_plus_associative(self, name, semiring):
        rng = random.Random(1 + (hash(name) & 0xFFFF))
        values = _samples(semiring, rng)[:8]
        for a in values:
            for b in values:
                for c in values:
                    assert (semiring.plus(semiring.plus(a, b), c)
                            == semiring.plus(a, semiring.plus(b, c)))

    def test_zero_is_plus_identity(self, name, semiring):
        rng = random.Random(2 + (hash(name) & 0xFFFF))
        for a in _samples(semiring, rng):
            assert semiring.plus(semiring.zero, a) == a
            assert semiring.plus(a, semiring.zero) == a

    def test_absorbing_element_absorbs(self, name, semiring):
        if not semiring.has_absorbing:
            pytest.skip("no absorbing element declared")
        rng = random.Random(3 + (hash(name) & 0xFFFF))
        for a in _samples(semiring, rng):
            assert semiring.plus(a, semiring.absorbing) == semiring.absorbing
            assert semiring.plus(semiring.absorbing, a) == semiring.absorbing


@pytest.mark.parametrize("name,semiring",
                         [(n, s) for n, s in _registered() if s.has_product])
class TestSemiringLaws:
    def test_times_associative(self, name, semiring):
        rng = random.Random(4 + (hash(name) & 0xFFFF))
        values = _product_samples(semiring, rng)[:8] + [semiring.one]
        for a in values:
            for b in values:
                for c in values:
                    assert (semiring.times(semiring.times(a, b), c)
                            == semiring.times(a, semiring.times(b, c)))

    def test_one_is_times_identity(self, name, semiring):
        rng = random.Random(5 + (hash(name) & 0xFFFF))
        for a in _product_samples(semiring, rng):
            assert semiring.times(semiring.one, a) == a
            assert semiring.times(a, semiring.one) == a

    def test_times_distributes_over_plus(self, name, semiring):
        rng = random.Random(6 + (hash(name) & 0xFFFF))
        multipliers = _product_samples(semiring, rng)[:6] + [semiring.one]
        values = _samples(semiring, rng)[:8]
        for a in multipliers:
            for b in values:
                for c in values:
                    left = semiring.times(a, semiring.plus(b, c))
                    right = semiring.plus(semiring.times(a, b),
                                          semiring.times(a, c))
                    assert left == right
                    left = semiring.times(semiring.plus(b, c), a)
                    right = semiring.plus(semiring.times(b, a),
                                          semiring.times(c, a))
                    assert left == right

    def test_zero_annihilates(self, name, semiring):
        rng = random.Random(7 + (hash(name) & 0xFFFF))
        for a in _product_samples(semiring, rng):
            assert semiring.times(semiring.zero, a) == semiring.zero
            assert semiring.times(a, semiring.zero) == semiring.zero


class TestFinalize:
    def test_plain_semirings_finish_identity(self):
        sr = SEMIRINGS["sum"]
        assert sr.finish(41) == 41

    def test_avg_finalizes_to_mean(self):
        sr = SEMIRINGS["avg"]
        acc = sr.zero
        for v in (2, 4, 9):
            acc = sr.plus(acc, sr.lift(v))
        assert acc == (15, 3)
        assert sr.finish(acc) == 5.0

    def test_avg_of_nothing_is_none(self):
        sr = SEMIRINGS["avg"]
        assert sr.finish(sr.zero) is None
