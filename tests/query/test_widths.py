"""Tests for tree decompositions and fractional hypertree width."""

import pytest

from repro.errors import QueryError
from repro.bounds.agm import rho_star
from repro.query.atoms import (
    clique_query,
    cycle_query,
    path_query,
    triangle_query,
)
from repro.query.widths import (
    TreeDecomposition,
    best_decomposition,
    decomposition_from_elimination_order,
    fractional_hypertree_width,
    min_fill_order,
)


class TestDecompositionConstruction:
    def test_triangle_single_bag(self):
        h = triangle_query().hypergraph()
        decomposition = decomposition_from_elimination_order(h, ("A", "B", "C"))
        assert decomposition.is_valid_for(h)
        assert max(len(bag) for bag in decomposition.bags) == 3

    def test_path_decomposition_is_width_one(self):
        h = path_query(4).hypergraph()
        decomposition = decomposition_from_elimination_order(h, h.vertices)
        assert decomposition.is_valid_for(h)
        assert decomposition.width() == 1

    def test_invalid_order_rejected(self):
        h = triangle_query().hypergraph()
        with pytest.raises(QueryError):
            decomposition_from_elimination_order(h, ("A", "B"))

    def test_validity_checker_detects_missing_edge_coverage(self):
        h = triangle_query().hypergraph()
        bad = TreeDecomposition(
            bags=(frozenset({"A", "B"}), frozenset({"B", "C"})),
            edges=((0, 1),),
            elimination_order=("A", "B", "C"),
        )
        # Edge T = {A, C} is in no bag.
        assert not bad.is_valid_for(h)

    def test_validity_checker_detects_broken_connectivity(self):
        h = path_query(3).hypergraph()  # X1-X2-X3-X4
        bad = TreeDecomposition(
            bags=(frozenset({"X1", "X2"}), frozenset({"X2", "X3"}),
                  frozenset({"X3", "X4"}), frozenset({"X1", "X4"})),
            edges=((0, 1), (1, 2), (2, 3)),
            elimination_order=h.vertices,
        )
        # X1 appears in bags 0 and 3, which are not adjacent via X1-bags.
        assert not bad.is_valid_for(h)


class TestFractionalHypertreeWidth:
    def test_acyclic_queries_have_width_one(self):
        assert fractional_hypertree_width(path_query(3).hypergraph()) == pytest.approx(1.0)

    def test_triangle_width(self):
        assert fractional_hypertree_width(triangle_query().hypergraph()) == pytest.approx(1.5)

    def test_width_never_exceeds_rho_star(self):
        for query in (triangle_query(), cycle_query(4), cycle_query(5), clique_query(4)):
            h = query.hypergraph()
            assert fractional_hypertree_width(h) <= rho_star(query) + 1e-9

    def test_four_cycle_width_below_rho_star(self):
        # rho*(C4) = 2, but a two-bag decomposition does strictly better than
        # the trivial single-bag one would suggest is necessary... the key
        # reproducible fact: fhtw(C4) < rho*(C4).
        h = cycle_query(4).hypergraph()
        width = fractional_hypertree_width(h)
        assert 1.0 < width <= 2.0

    def test_clique_width_equals_half_k(self):
        # The k-clique's only decompositions put all vertices in one bag (any
        # separator is a clique), so fhtw = rho* = k/2.
        assert fractional_hypertree_width(clique_query(4).hypergraph()) == pytest.approx(2.0)

    def test_best_decomposition_achieves_reported_width(self):
        h = cycle_query(4).hypergraph()
        decomposition = best_decomposition(h)
        assert decomposition.is_valid_for(h)
        assert decomposition.fractional_hypertree_width(h) == pytest.approx(
            fractional_hypertree_width(h))

    def test_min_fill_order_is_permutation(self):
        h = clique_query(4).hypergraph()
        order = min_fill_order(h)
        assert sorted(order) == sorted(h.vertices)

    def test_greedy_fallback_used_for_larger_queries(self):
        h = cycle_query(7).hypergraph()
        width = fractional_hypertree_width(h, max_exact_vertices=5)
        assert 1.0 < width <= rho_star(cycle_query(7)) + 1e-9
