"""Tests for the unified Query object and its chainable builder."""

import pytest

from repro.errors import QueryError
from repro.query.atoms import triangle_query
from repro.query.builder import Q, Query, QueryAtom, sort_rows
from repro.query.semiring import count, sum_
from repro.query.terms import Comparison, Constant, comparison


class TestLowering:
    def test_constants_become_fresh_pinned_variables(self):
        q = Query([QueryAtom("R", ("A", 5))])
        assert len(q.core.variables) == 2
        fresh = [v for v in q.core.variables if v != "A"]
        assert q.fixed_variables == frozenset(fresh)
        assert q.all_selections[0].is_constant_equality

    def test_repeated_variable_becomes_equality(self):
        q = Query([QueryAtom("R", ("A", "A"))])
        assert len(q.core.variables) == 2
        sel = q.all_selections[0]
        assert sel.op == "==" and not sel.is_constant_equality

    def test_visible_variables_exclude_fresh_ones(self):
        q = Query([QueryAtom("R", ("A", 5)), QueryAtom("S", ("A", "B"))])
        assert q.visible_variables == ("A", "B")
        assert q.head_vars == ("A", "B")  # default head is the visible vars

    def test_fresh_variables_avoid_user_collisions(self):
        q = Query([QueryAtom("R", ("_k0", 5))])
        assert len(set(q.core.variables)) == 2

    def test_head_must_be_visible(self):
        with pytest.raises(QueryError):
            Query([QueryAtom("R", ("A", "B"))], head=("C",))

    def test_selection_variables_must_be_visible(self):
        with pytest.raises(QueryError):
            Query([QueryAtom("R", ("A", "B"))],
                  selections=[comparison("A", "<", "Z")])

    def test_aggregate_defaults_to_empty_group(self):
        q = Query([QueryAtom("R", ("A", "B"))], aggregates=[count()])
        assert q.head_vars == ()
        assert q.output_columns == ("count",)

    def test_order_by_must_name_an_output_column(self):
        with pytest.raises(QueryError):
            Query([QueryAtom("R", ("A", "B"))], head=("A",), order_by=["B"])

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            Query([QueryAtom("R", ("A", "B"))], limit=-1)

    def test_wrapping_a_conjunctive_query_preserves_head(self):
        cq = triangle_query()
        wrapped = Query.from_conjunctive(cq)
        assert wrapped.head_vars == cq.head
        assert wrapped.is_plain and wrapped.is_full
        assert str(wrapped) == str(cq)

    def test_coerce_accepts_all_forms(self):
        cq = triangle_query()
        from_text = Query.coerce("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        from_cq = Query.coerce(cq)
        builder = Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
        assert from_text == from_cq == Query.coerce(builder)
        with pytest.raises(QueryError):
            Query.coerce(42)

    def test_equality_and_hash(self):
        a = Query.coerce("Q(A) :- R(A,B), S(B,5), A < B")
        b = Query.coerce("Q(A) :- R(A,B), S(B,5), A < B")
        c = Query.coerce("Q(A) :- R(A,B), S(B,6), A < B")
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestBuilder:
    def test_chain_builds_the_expected_query(self):
        q = (Q.from_("R", "A", "B").from_("S", "B", 5)
             .where("A < B").select("A").order_by("-A").limit(10).build())
        assert q.output_columns == ("A",)
        assert q.order_by == (("A", True),)
        assert q.limit == 10
        assert len(q.all_selections) == 2  # A < B plus the constant pin

    def test_where_accepts_operand_triples_and_comparisons(self):
        q = (Q.from_("R", "A", "B")
             .where("A", "<", "B")
             .where(Comparison("A", "!=", Constant(3)))
             .build())
        assert len(q.selections) == 2

    def test_where_rejects_nonsense(self):
        with pytest.raises(QueryError):
            Q.from_("R", "A", "B").where("A", "<")

    def test_aggregate_select_with_group_by(self):
        q = (Q.from_("R", "A", "B").select("A", count(), sum_("B", "total"))
             .group_by("A").build())
        assert q.head_vars == ("A",)
        assert q.output_columns == ("A", "count", "total")

    def test_group_by_must_match_selected_variables(self):
        builder = Q.from_("R", "A", "B").select("A", count()).group_by("B")
        with pytest.raises(QueryError):
            builder.build()

    def test_group_by_without_aggregates_rejected(self):
        builder = Q.from_("R", "A", "B").select("A").group_by("A")
        with pytest.raises(QueryError):
            builder.build()

    def test_named_builder(self):
        q = Q("Triangles").from_("R", "A", "B").build()
        assert q.name == "Triangles"

    def test_string_constants_need_quotes(self):
        q = Q.from_("R", "A", "'x'").build()
        assert q.all_selections[0].rhs == Constant("x")
        with pytest.raises(QueryError):
            Q.from_("R", "A", "not an identifier!")

    def test_select_rejects_non_terms(self):
        with pytest.raises(QueryError):
            Q.from_("R", "A", "B").select(3.14)

    def test_select_rejects_variable_after_aggregate(self):
        with pytest.raises(QueryError, match="before aggregates"):
            Q.from_("R", "A", "B").select(count(), "A")


class TestSortRows:
    ROWS = [(1, "b"), (2, "a"), (1, "a"), (3, "c")]

    def test_ascending(self):
        assert sort_rows(self.ROWS, ("X", "Y"), [("X", False)]) == [
            (1, "a"), (1, "b"), (2, "a"), (3, "c")]

    def test_descending_and_secondary(self):
        ordered = sort_rows(self.ROWS, ("X", "Y"), [("X", True), ("Y", False)])
        assert ordered == [(3, "c"), (2, "a"), (1, "a"), (1, "b")]

    def test_top_k_matches_full_sort_prefix(self):
        full = sort_rows(self.ROWS, ("X", "Y"), [("Y", True)])
        assert sort_rows(self.ROWS, ("X", "Y"), [("Y", True)], limit=2) == full[:2]
