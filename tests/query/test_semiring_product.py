"""Product semirings and the component ``⊗``-combine helper.

Satellite regression of the component-factorization PR: a product
semiring built from factors where only *one* declares a ``plus``-absorbing
element must not advertise ``has_absorbing`` — ``(True, s)`` with the
boolean absorbing first coordinate does not absorb in the sum coordinate,
and an eliminator trusting it would stop a fold early and finalize a
half-folded value (the ``_avg_finalize`` confusion).  The combine helper
``times_fold`` is pinned for every built-in semiring, the ranking
semiring's disjoint-position merge included.
"""

import random

import pytest

from repro.errors import QueryError
from repro.query.semiring import (
    BOOLEAN,
    RANKING,
    SEMIRINGS,
    Descending,
    product_semiring,
    rank_component,
    times_fold,
)


class TestProductSemiring:
    def test_componentwise_operations(self):
        pair = product_semiring("pair", [SEMIRINGS["count"], SEMIRINGS["sum"]])
        assert pair.zero == (0, 0)
        assert pair.one == (1, 1)
        assert pair.lift(7) == (1, 7)
        assert pair.plus((1, 7), (1, 3)) == (2, 10)
        assert pair.times((2, 10), (3, 5)) == (6, 50)

    def test_semiring_laws_hold_on_samples(self):
        pair = product_semiring("pair", [SEMIRINGS["sum"], SEMIRINGS["min"]])
        rng = random.Random(0)
        values = [pair.lift(rng.randint(-9, 9)) for _ in range(6)]
        for a in values:
            for b in values:
                assert pair.plus(a, b) == pair.plus(b, a)
                for c in values:
                    assert (pair.times(a, pair.plus(b, c))
                            == pair.plus(pair.times(a, b), pair.times(a, c)))
                assert pair.plus(pair.zero, a) == a
                assert pair.times(pair.one, a) == a

    def test_single_absorbing_factor_must_not_advertise_absorbing(self):
        # The regression: BOOLEAN absorbs (True), sum does not; the
        # product must not pretend to saturate.
        mixed = product_semiring("mixed", [BOOLEAN, SEMIRINGS["sum"]])
        assert BOOLEAN.has_absorbing
        assert not SEMIRINGS["sum"].has_absorbing
        assert not mixed.has_absorbing

    def test_all_absorbing_factors_compose(self):
        both = product_semiring("both", [BOOLEAN, BOOLEAN])
        assert both.has_absorbing
        assert both.absorbing == (True, True)
        # The advertised element must actually absorb.
        for value in ((False, False), (True, False), (False, True)):
            assert both.plus(both.absorbing, value) == both.absorbing

    def test_avg_registration_never_gained_absorbing(self):
        # AVG's (sum, count) carrier folds both coordinates to the end;
        # were it absorbing, ``_avg_finalize`` would divide a saturated
        # sum by a truncated count.
        assert not SEMIRINGS["avg"].has_absorbing

    def test_times_only_when_every_factor_has_product(self):
        from repro.query.semiring import Semiring
        monoid = Semiring("monoid", 0, lambda a, b: a + b, lambda v: v)
        product = product_semiring("p", [SEMIRINGS["sum"], monoid])
        assert not product.has_product

    def test_coordinatewise_finalize_default(self):
        avgish = product_semiring("fin", [SEMIRINGS["avg"], SEMIRINGS["sum"]])
        assert avgish.finish((((10, 4), 3))) == (2.5, 3)

    def test_empty_factor_list_rejected(self):
        with pytest.raises(QueryError):
            product_semiring("empty", [])


class TestTimesFold:
    def test_counts_multiply_and_sums_cross_weight(self):
        assert times_fold(SEMIRINGS["count"], [3, 4, 5]) == 60
        # sum ⊗ count-as-one: the value-carrying factor is weighted by
        # the other components' multiplicities.
        assert times_fold(SEMIRINGS["sum"], [10, 4]) == 40

    def test_tropical_one_passes_through(self):
        one = SEMIRINGS["min"].one
        assert times_fold(SEMIRINGS["min"], [one, 7, one]) == 7
        assert times_fold(SEMIRINGS["max"], [one]) is one

    def test_empty_fold_is_one(self):
        assert times_fold(SEMIRINGS["count"], []) == 1
        assert times_fold(RANKING, []) == ()

    def test_boolean_zero_annihilates_but_absorbing_does_not(self):
        assert times_fold(BOOLEAN, [True, False, True]) is False
        # ``True`` is plus-absorbing yet must not short-circuit ⊗: a
        # later False (empty component) still zeroes the product.
        assert times_fold(BOOLEAN, [BOOLEAN.absorbing, False]) is False

    def test_ranking_vectors_merge_by_disjoint_positions(self):
        left = ((0, 3), (2, Descending(5)))
        right = ((1, 9),)
        merged = times_fold(RANKING, [left, right])
        assert merged == ((0, 3), (1, 9), (2, Descending(5)))
        # Empty sub-problem (the ranking zero) annihilates.
        assert times_fold(RANKING, [left, None]) is None

    def test_ranking_merge_equals_joint_minimum(self):
        # Exactness of per-component best-suffix bounds: the lex-min of
        # the product of independent blocks is the merge of the blocks'
        # lex-minima.
        rng = random.Random(1)
        xs = [rng.randrange(50) for _ in range(8)]
        ys = [rng.randrange(50) for _ in range(8)]
        joint = min(((0, rank_component(x, False)),
                     (1, rank_component(y, True)))
                    for x in xs for y in ys
                    )  # tuples compare lexicographically by (pos, comp)
        best_x = None
        for x in xs:
            best_x = RANKING.plus(best_x, ((0, rank_component(x, False)),))
        best_y = None
        for y in ys:
            best_y = RANKING.plus(best_y, ((1, rank_component(y, True)),))
        assert times_fold(RANKING, [best_x, best_y]) == joint

    def test_monoid_without_product_is_rejected(self):
        from repro.query.semiring import Semiring
        monoid = Semiring("monoid", 0, lambda a, b: a + b, lambda v: v)
        with pytest.raises(QueryError):
            times_fold(monoid, [1, 2])
