"""Tests for variable-ordering heuristics."""

import pytest

from repro.query.atoms import Atom, ConjunctiveQuery, path_query, triangle_query
from repro.query.variable_order import (
    greedy_min_domain_order,
    min_degree_order,
    natural_order,
    validate_order,
)
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestOrders:
    def test_natural_order(self):
        assert natural_order(triangle_query()) == ("A", "B", "C")

    def test_min_degree_order_prefers_shared_variables(self):
        # In Q :- R(A,B), S(B,C), U(B,D): B occurs in 3 atoms.
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C")),
                              Atom("U", ("B", "D"))])
        order = min_degree_order(q)
        assert order[0] == "B"

    def test_min_degree_order_is_permutation(self):
        q = path_query(4)
        assert sorted(min_degree_order(q)) == sorted(q.variables)

    def test_min_degree_order_breaks_ties_by_name(self):
        # All three variables occur in exactly one atom; occurrence order is
        # (Z, Y, X) but the tie-break must be the variable name.
        q = ConjunctiveQuery([Atom("R", ("Z", "Y")), Atom("S", ("X",))])
        assert min_degree_order(q) == ("X", "Y", "Z")

    def test_min_degree_order_is_stable_across_runs(self):
        q = triangle_query()
        orders = {min_degree_order(q) for _ in range(50)}
        assert orders == {("A", "B", "C")}

    def test_min_degree_order_ignores_atom_listing_order(self):
        # The same structure with atoms permuted must give the same order:
        # the engine's plan cache reuses orders across syntactic variants.
        base = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C")),
                                 Atom("T", ("A", "C"))])
        permuted = ConjunctiveQuery([Atom("T", ("A", "C")), Atom("S", ("B", "C")),
                                     Atom("R", ("A", "B"))])
        assert min_degree_order(base) == min_degree_order(permuted)

    def test_greedy_min_domain_order(self):
        q = triangle_query()
        db = Database([
            Relation("R", ("A", "B"), [(i, 0) for i in range(10)]),
            Relation("S", ("B", "C"), [(0, i) for i in range(10)]),
            Relation("T", ("A", "C"), [(i, i) for i in range(10)]),
        ])
        order = greedy_min_domain_order(q, db)
        # B has a single distinct value in both R and S, so it should come first.
        assert order[0] == "B"
        assert sorted(order) == ["A", "B", "C"]

    def test_validate_order_accepts_permutation(self):
        q = triangle_query()
        assert validate_order(q, ("C", "A", "B")) == ("C", "A", "B")

    def test_validate_order_rejects_missing_variable(self):
        with pytest.raises(ValueError):
            validate_order(triangle_query(), ("A", "B"))

    def test_validate_order_rejects_extras(self):
        with pytest.raises(ValueError):
            validate_order(triangle_query(), ("A", "B", "C", "D"))


class TestComponentwiseTailScoring:
    def test_star_tail_width_is_the_max_component_width(self):
        from repro.query.variable_order import aggregate_elimination_order
        q = ConjunctiveQuery([Atom("R1", ("A", "B")), Atom("R2", ("A", "C")),
                              Atom("R3", ("A", "D"))])
        order, width = aggregate_elimination_order(q, group=("A",))
        assert order[0] == "A"
        assert sorted(order[1:]) == ["B", "C", "D"]
        # Each residual component {B}, {C}, {D} has width 1; the
        # monolithic tail would report the same exponent here, but the
        # component split is what the factorized eliminator executes.
        assert width == 1.0

    def test_product_tail_of_two_pairs(self):
        from repro.query.variable_order import aggregate_elimination_order
        q = ConjunctiveQuery([Atom("R", ("A", "B", "C")),
                              Atom("S", ("D", "E"))])
        order, width = aggregate_elimination_order(q, group=("A",))
        assert order[0] == "A"
        assert width == 1.0
        # Components stay contiguous in the tail: {B, C} then {D, E}
        # (deterministic order by first tail occurrence).
        tail = order[1:]
        assert set(tail[:2]) == {"B", "C"}
        assert set(tail[2:]) == {"D", "E"}

    def test_large_components_fall_back_per_component(self):
        from repro.query.variable_order import aggregate_elimination_order
        # One oversized component (> max_exact_tail) next to a small one:
        # only the big one loses permutation search.
        atoms = [Atom("R", ("A", "B1", "B2", "B3", "B4", "B5", "B6")),
                 Atom("S", ("A", "C"))]
        q = ConjunctiveQuery(atoms)
        order, width = aggregate_elimination_order(q, group=("A",),
                                                   max_exact_tail=3)
        assert order[0] == "A"
        assert width >= 1.0

    def test_non_decomposable_scoring_is_unchanged(self):
        from repro.query.variable_order import aggregate_elimination_order
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C")),
                              Atom("T", ("A", "C"))])
        _order, width = aggregate_elimination_order(q, group=("A",))
        assert width == 1.5


class TestOrderMemoization:
    """The order heuristics are pure — repeated planning must not
    re-enumerate tail permutations (each scored via a tree
    decomposition), especially not when the engine's plan cache already
    holds the plan."""

    def _count_decompositions(self, monkeypatch):
        import repro.query.widths as widths
        calls = {"n": 0}
        original = widths.decomposition_from_elimination_order

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(widths, "decomposition_from_elimination_order",
                            counting)
        return calls

    def test_best_tail_order_memoizes_permutation_sweep(self, monkeypatch):
        import repro.query.variable_order as vo
        from repro.query.variable_order import aggregate_elimination_order
        vo._tail_order_memo.clear()
        calls = self._count_decompositions(monkeypatch)
        q = ConjunctiveQuery([Atom("R", ("A", "B", "C")),
                              Atom("S", ("C", "D")), Atom("T", ("A", "D"))])
        first = aggregate_elimination_order(q, group=("A",))
        assert calls["n"] > 0
        after_first = calls["n"]
        second = aggregate_elimination_order(q, group=("A",))
        assert second == first
        assert calls["n"] == after_first, "warm call re-enumerated the tail"

    def test_no_reenumeration_on_plan_cache_hits(self, monkeypatch):
        import repro.query.variable_order as vo
        from repro.engine.session import Engine
        vo._tail_order_memo.clear()
        calls = self._count_decompositions(monkeypatch)
        eng = Engine(relations=[
            Relation("R", ("X", "Y"), [(1, 2), (2, 3)]),
            Relation("S", ("X", "Y"), [(1, 2), (2, 3)]),
        ])
        q = "Q(A, COUNT(*) AS n) :- R(A,B), S(B,C)"
        expected = eng.execute(q)
        cold = calls["n"]
        assert cold > 0
        # Warm plan-cache lookup: no planning at all.
        assert list(eng.execute(q).tuples) == list(expected.tuples)
        assert calls["n"] == cold
        # Re-plan after cache invalidation: the memo serves the scored
        # order without re-running the permutation sweep.
        eng.clear_caches()
        assert list(eng.execute(q).tuples) == list(expected.tuples)
        assert calls["n"] == cold

    def test_memo_distinguishes_couplings_and_factorization(self):
        import repro.query.variable_order as vo
        from repro.query.variable_order import aggregate_elimination_order
        vo._tail_order_memo.clear()
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("A", "C"))])
        factored = aggregate_elimination_order(q, group=("A",))
        monolithic = aggregate_elimination_order(q, group=("A",),
                                                 factorize=False)
        assert len(vo._tail_order_memo) == 2
        assert factored[0][0] == monolithic[0][0] == "A"

    def test_min_degree_order_memoizes(self):
        import repro.query.variable_order as vo
        vo._min_degree_memo.clear()
        q = path_query(4)
        order = min_degree_order(q)
        assert vo._min_degree_memo[q] == order
        assert min_degree_order(q) == order
