"""Tests for GYO acyclicity and join trees."""

import pytest

from repro.query.atoms import (
    clique_query,
    cycle_query,
    loomis_whitney_query,
    path_query,
    triangle_query,
)
from repro.query.decomposition import gyo_reduction, is_alpha_acyclic, join_tree
from repro.query.hypergraph import Hypergraph


class TestAcyclicity:
    def test_triangle_is_cyclic(self):
        assert not is_alpha_acyclic(triangle_query().hypergraph())

    def test_path_is_acyclic(self):
        assert is_alpha_acyclic(path_query(4).hypergraph())

    def test_cycles_are_cyclic(self):
        for k in (4, 5, 6):
            assert not is_alpha_acyclic(cycle_query(k).hypergraph())

    def test_cliques_are_cyclic(self):
        assert not is_alpha_acyclic(clique_query(4).hypergraph())

    def test_loomis_whitney_cyclic(self):
        assert not is_alpha_acyclic(loomis_whitney_query(4).hypergraph())

    def test_single_edge_is_acyclic(self):
        h = Hypergraph(["A", "B"], {"R": ["A", "B"]})
        assert is_alpha_acyclic(h)

    def test_star_query_is_acyclic(self):
        h = Hypergraph(["A", "B", "C", "D"],
                       {"R": ["A", "B"], "S": ["A", "C"], "T": ["A", "D"]})
        assert is_alpha_acyclic(h)

    def test_big_atom_covering_triangle_is_acyclic(self):
        # Adding an atom over all three variables makes the triangle acyclic
        # (the big atom absorbs the small ones).
        h = Hypergraph(["A", "B", "C"],
                       {"R": ["A", "B"], "S": ["B", "C"], "T": ["A", "C"],
                        "U": ["A", "B", "C"]})
        assert is_alpha_acyclic(h)


class TestJoinTree:
    def test_join_tree_of_path(self):
        h = path_query(3).hypergraph()
        tree = join_tree(h)
        # Every edge appears and exactly one root (parent None).
        assert set(tree.keys()) == set(h.edge_keys)
        assert sum(1 for parent in tree.values() if parent is None) == 1

    def test_join_tree_parent_shares_variables(self):
        h = path_query(4).hypergraph()
        tree = join_tree(h)
        for child, parent in tree.items():
            if parent is None:
                continue
            assert h.edge(child) & h.edge(parent)

    def test_join_tree_rejects_cyclic(self):
        with pytest.raises(ValueError):
            join_tree(triangle_query().hypergraph())

    def test_gyo_result_fields(self):
        result = gyo_reduction(triangle_query().hypergraph())
        assert not result.acyclic
        assert len(result.remaining_edges) >= 2
