"""Tests for the datalog-style query parser."""

import pytest

from repro.errors import ParseError
from repro.query.atoms import triangle_query
from repro.query.builder import Query
from repro.query.parser import parse_condition, parse_query
from repro.query.terms import Constant


class TestParser:
    def test_full_rule(self):
        q = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C).")
        assert q == triangle_query()
        assert q.name == "Q"

    def test_arrow_synonym(self):
        q = parse_query("Q(A, B) <- R(A, B)")
        assert q.variables == ("A", "B")

    def test_body_only(self):
        q = parse_query("R(A,B), S(B,C)")
        assert q.variables == ("A", "B", "C")
        assert q.is_full

    def test_whitespace_insensitive(self):
        q = parse_query("  Q( A , B ) :-   R( A ,B )  ,S(B)  ")
        assert q.head == ("A", "B")
        assert len(q.atoms) == 2

    def test_trailing_period_optional(self):
        assert parse_query("R(A,B)") == parse_query("R(A,B).")

    def test_head_projection(self):
        q = parse_query("Q(A) :- R(A,B)")
        assert q.head == ("A",)
        assert not q.is_full

    def test_underscore_names(self):
        q = parse_query("my_q(X_1) :- rel_1(X_1, X_2)")
        assert q.atoms[0].relation == "rel_1"
        assert q.variables == ("X_1", "X_2")

    def test_empty_text_rejected(self):
        with pytest.raises(ParseError):
            parse_query("   ")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("this is not datalog")

    def test_atom_without_variables_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(A) :- R()")

    def test_bad_variable_name_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(A) :- R(A, 1B)")

    def test_missing_comma_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(A,B) :- R(A,B) S(B)")

    def test_bad_head_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q A :- R(A)")

    def test_round_trip_through_str(self):
        q = triangle_query()
        assert parse_query(str(q)) == q


class TestRichGrammar:
    def test_integer_constants_lower_to_selections(self):
        q = parse_query("Q(A) :- R(A,B), S(B,5)")
        assert isinstance(q, Query)
        assert q.output_columns == ("A",)
        constants = [s for s in q.all_selections if s.is_constant_equality]
        assert len(constants) == 1
        assert constants[0].rhs == Constant(5)
        # The core is a plain full CQ over variables only.
        assert len(q.core.variables) == 3

    def test_negative_integer_constant(self):
        q = parse_query("R(A, -3)")
        sel = q.all_selections[0]
        assert sel.rhs == Constant(-3)

    def test_quoted_string_constants(self):
        single = parse_query("R(A, 'x y')")
        double = parse_query('R(A, "x y")')
        assert single.all_selections[0].rhs == Constant("x y")
        assert double.all_selections[0].rhs == Constant("x y")

    def test_comparison_selections(self):
        q = parse_query("Q(A) :- R(A,B), A < B, A != 3")
        ops = sorted(s.op for s in q.selections)
        assert ops == ["!=", "<"]

    def test_equals_is_a_synonym_of_double_equals(self):
        q = parse_query("Q(A) :- R(A,B), B = 2")
        assert q.selections[0].op == "=="

    def test_constant_first_comparison_is_mirrored(self):
        q = parse_query("Q(A) :- R(A,B), 3 < B")
        sel = q.selections[0]
        assert sel.lhs == "B" and sel.op == ">" and sel.rhs == Constant(3)

    def test_less_than_negative_constant_is_not_an_arrow(self):
        q = parse_query("Q(A) :- R(A,B), B<-3")
        sel = q.selections[0]
        assert sel.op == "<" and sel.rhs == Constant(-3)
        headless = parse_query("R(A,B), B<-3")
        assert headless.selections[0].rhs == Constant(-3)

    def test_arrow_synonym_still_lexes_before_relation_names(self):
        q = parse_query("Q(A, B) <- R(A, B)")
        assert q.head == ("A", "B")

    def test_head_variable_after_aggregate_rejected(self):
        with pytest.raises(ParseError, match="before aggregates"):
            parse_query("Q(COUNT(*), A) :- R(A,B)")

    def test_repeated_variable_in_atom_lowers_to_equality(self):
        q = parse_query("R(A, A)")
        assert isinstance(q, Query)
        assert len(q.core.variables) == 2
        assert len(q.all_selections) == 1

    def test_aggregate_heads(self):
        q = parse_query("Q(A, COUNT(*), SUM(B) AS total) :- R(A,B)")
        assert q.head_vars == ("A",)
        assert [a.kind for a in q.aggregates] == ["count", "sum"]
        assert q.output_columns == ("A", "count", "total")

    def test_aggregates_are_case_insensitive(self):
        q = parse_query("Q(min(B), Max(B)) :- R(A,B)")
        assert [a.kind for a in q.aggregates] == ["min", "max"]

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(MEDIAN(B)) :- R(A,B)")

    def test_sum_needs_a_variable(self):
        with pytest.raises(ParseError):
            parse_query("Q(SUM(*)) :- R(A,B)")

    def test_plain_fragment_still_returns_conjunctive_query(self):
        from repro.query.atoms import ConjunctiveQuery

        q = parse_query("Q(A) :- R(A,B)")
        assert isinstance(q, ConjunctiveQuery)

    def test_parse_condition(self):
        sel = parse_condition("A != 3")
        assert sel.lhs == "A" and sel.rhs == Constant(3)
        with pytest.raises(ParseError):
            parse_condition("A < B junk")


class TestErrorPositions:
    def test_dangling_text_after_final_atom_rejected(self):
        with pytest.raises(ParseError, match="dangling"):
            parse_query("R(A,B) junk")

    def test_trailing_comma_rejected(self):
        with pytest.raises(ParseError):
            parse_query("R(A,B),")

    def test_text_after_period_rejected(self):
        with pytest.raises(ParseError, match="dangling"):
            parse_query("R(A,B). S(B,C)")

    def test_error_reports_line_and_column(self):
        with pytest.raises(ParseError) as info:
            parse_query("Q(A) :- R(A,B),\n  S(B C)")
        assert info.value.line == 2
        assert info.value.column == 7
        assert "line 2, column 7" in str(info.value)

    def test_error_column_on_first_line(self):
        with pytest.raises(ParseError) as info:
            parse_query("R(A,B) ; S(B,C)")
        assert info.value.line == 1
        assert info.value.column == 8

    def test_unterminated_string_rejected_with_position(self):
        with pytest.raises(ParseError) as info:
            parse_query("R(A, 'oops)")
        assert info.value.column == 6

    def test_comparison_only_body_rejected(self):
        with pytest.raises(ParseError, match="no atoms"):
            parse_query("A < B")

    def test_missing_arrow_after_head_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(A) R(A,B)")
