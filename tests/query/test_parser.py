"""Tests for the datalog-style query parser."""

import pytest

from repro.errors import ParseError
from repro.query.atoms import triangle_query
from repro.query.parser import parse_query


class TestParser:
    def test_full_rule(self):
        q = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C).")
        assert q == triangle_query()
        assert q.name == "Q"

    def test_arrow_synonym(self):
        q = parse_query("Q(A, B) <- R(A, B)")
        assert q.variables == ("A", "B")

    def test_body_only(self):
        q = parse_query("R(A,B), S(B,C)")
        assert q.variables == ("A", "B", "C")
        assert q.is_full

    def test_whitespace_insensitive(self):
        q = parse_query("  Q( A , B ) :-   R( A ,B )  ,S(B)  ")
        assert q.head == ("A", "B")
        assert len(q.atoms) == 2

    def test_trailing_period_optional(self):
        assert parse_query("R(A,B)") == parse_query("R(A,B).")

    def test_head_projection(self):
        q = parse_query("Q(A) :- R(A,B)")
        assert q.head == ("A",)
        assert not q.is_full

    def test_underscore_names(self):
        q = parse_query("my_q(X_1) :- rel_1(X_1, X_2)")
        assert q.atoms[0].relation == "rel_1"
        assert q.variables == ("X_1", "X_2")

    def test_empty_text_rejected(self):
        with pytest.raises(ParseError):
            parse_query("   ")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("this is not datalog")

    def test_atom_without_variables_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(A) :- R()")

    def test_bad_variable_name_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(A) :- R(A, 1B)")

    def test_missing_comma_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(A,B) :- R(A,B) S(B)")

    def test_bad_head_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q A :- R(A)")

    def test_round_trip_through_str(self):
        q = triangle_query()
        assert parse_query(str(q)) == q
