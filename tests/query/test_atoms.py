"""Tests for repro.query.atoms: Atom, ConjunctiveQuery, canned queries."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.query.atoms import (
    Atom,
    ConjunctiveQuery,
    clique_query,
    cycle_query,
    loomis_whitney_query,
    path_query,
    triangle_query,
)
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestAtom:
    def test_basic(self):
        atom = Atom("R", ("A", "B"))
        assert atom.relation == "R"
        assert atom.variables == ("A", "B")
        assert atom.variable_set == frozenset({"A", "B"})
        assert str(atom) == "R(A, B)"

    def test_repeated_variable_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ("A", "A"))

    def test_empty_atom_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ())


class TestConjunctiveQuery:
    def test_variables_in_first_occurrence_order(self):
        q = triangle_query()
        assert q.variables == ("A", "B", "C")
        assert q.head == ("A", "B", "C")
        assert q.is_full

    def test_head_subset(self):
        q = ConjunctiveQuery([Atom("R", ("A", "B"))], head=("A",))
        assert not q.is_full
        assert q.head == ("A",)

    def test_head_unknown_variable_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([Atom("R", ("A",))], head=("Z",))

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery([])

    def test_atoms_containing(self):
        q = triangle_query()
        assert {a.relation for a in q.atoms_containing("A")} == {"R", "T"}
        assert {a.relation for a in q.atoms_containing("B")} == {"R", "S"}

    def test_edge_keys_unique_for_self_joins(self):
        q = ConjunctiveQuery([Atom("E", ("A", "B")), Atom("E", ("B", "C"))])
        keys = [q.edge_key(0), q.edge_key(1)]
        assert len(set(keys)) == 2
        assert q.atom_for_edge(keys[0]).variables == ("A", "B")

    def test_hypergraph(self):
        h = triangle_query().hypergraph()
        assert set(h.vertices) == {"A", "B", "C"}
        assert h.num_edges() == 3
        assert h.edge("R") == frozenset({"A", "B"})

    def test_str(self):
        assert "R(A, B)" in str(triangle_query())

    def test_equality_and_hash(self):
        assert triangle_query() == triangle_query()
        assert hash(triangle_query()) == hash(triangle_query())
        assert triangle_query() != clique_query(3)


class TestBindAndValidate:
    def test_validate_against_checks_arity(self):
        q = triangle_query()
        db = Database([
            Relation("R", ("X", "Y"), []),
            Relation("S", ("X", "Y", "Z"), []),
            Relation("T", ("X", "Y"), []),
        ])
        with pytest.raises(SchemaError):
            q.validate_against(db)

    def test_bind_renames_to_query_variables(self):
        q = triangle_query()
        db = Database([
            Relation("R", ("X", "Y"), [(1, 2)]),
            Relation("S", ("U", "V"), [(2, 3)]),
            Relation("T", ("P", "Q"), [(1, 3)]),
        ])
        bound = q.bind(db)
        assert bound["R"].attributes == ("A", "B")
        assert bound["S"].attributes == ("B", "C")
        assert (1, 2) in bound["R"]

    def test_bind_self_join(self):
        q = ConjunctiveQuery([Atom("E", ("A", "B")), Atom("E", ("B", "C"))])
        db = Database([Relation("E", ("X", "Y"), [(1, 2), (2, 3)])])
        bound = q.bind(db)
        assert len(bound) == 2
        assert bound[q.edge_key(0)].attributes == ("A", "B")
        assert bound[q.edge_key(1)].attributes == ("B", "C")


class TestCannedQueries:
    def test_triangle_shape(self):
        q = triangle_query()
        assert len(q.atoms) == 3
        assert all(len(a.variables) == 2 for a in q.atoms)

    def test_clique_query_atom_count(self):
        assert len(clique_query(4).atoms) == 6
        assert len(clique_query(5).atoms) == 10

    def test_clique_query_requires_k_at_least_2(self):
        with pytest.raises(QueryError):
            clique_query(1)

    def test_cycle_query(self):
        q = cycle_query(4)
        assert len(q.atoms) == 4
        assert len(q.variables) == 4
        with pytest.raises(QueryError):
            cycle_query(2)

    def test_path_query(self):
        q = path_query(3)
        assert len(q.atoms) == 3
        assert len(q.variables) == 4
        with pytest.raises(QueryError):
            path_query(0)

    def test_loomis_whitney_each_atom_misses_one_variable(self):
        q = loomis_whitney_query(4)
        assert len(q.atoms) == 4
        for atom in q.atoms:
            assert len(atom.variables) == 3
            missing = set(q.variables) - atom.variable_set
            assert len(missing) == 1
        with pytest.raises(QueryError):
            loomis_whitney_query(2)

    def test_lw3_is_triangle_shaped(self):
        q = loomis_whitney_query(3)
        assert all(len(a.variables) == 2 for a in q.atoms)
