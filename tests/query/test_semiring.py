"""Tests for the pluggable semiring aggregate layer."""

import pytest

from repro.errors import QueryError
from repro.query.semiring import (
    SEMIRINGS,
    Aggregate,
    Semiring,
    count,
    fold_aggregates,
    max_,
    min_,
    register_semiring,
    sum_,
)


ROWS = [(1, 10), (1, 20), (2, 5), (3, 7), (3, 7)]  # (A, B); dup collapses
VARIABLES = ("A", "B")


class TestFold:
    def test_grouped_count_and_sum(self):
        rows = set(ROWS)  # streams are distinct full tuples
        out = sorted(fold_aggregates(rows, VARIABLES, ("A",),
                                     [count(), sum_("B")]))
        assert out == [(1, 2, 30), (2, 1, 5), (3, 1, 7)]

    def test_min_max(self):
        out = sorted(fold_aggregates(set(ROWS), VARIABLES, ("A",),
                                     [min_("B"), max_("B")]))
        assert out == [(1, 10, 20), (2, 5, 5), (3, 7, 7)]

    def test_group_free_aggregate(self):
        out = list(fold_aggregates(set(ROWS), VARIABLES, (), [count()]))
        assert out == [(4,)]

    def test_group_free_empty_stream_yields_identities(self):
        out = list(fold_aggregates([], VARIABLES, (),
                                   [count(), sum_("B"), min_("B")]))
        assert out == [(0, 0, None)]

    def test_grouped_empty_stream_yields_no_rows(self):
        assert list(fold_aggregates([], VARIABLES, ("A",), [count()])) == []


class TestRegistry:
    def test_builtins_registered(self):
        assert {"count", "sum", "min", "max"} <= set(SEMIRINGS)

    def test_unknown_aggregate_kind_raises(self):
        with pytest.raises(QueryError):
            Aggregate("median", "B", "m").semiring()

    def test_register_custom_semiring(self):
        name = "test_product"
        if name not in SEMIRINGS:  # keep the test re-runnable in one session
            register_semiring(Semiring(name, 1, lambda a, b: a * b,
                                       lambda v: v))
        try:
            agg = Aggregate(name, "B", "prod")
            out = list(fold_aggregates({(1, 2), (1, 3)}, VARIABLES, ("A",),
                                       [agg]))
            assert out == [(1, 6)]
            with pytest.raises(QueryError):
                register_semiring(SEMIRINGS[name])
        finally:
            SEMIRINGS.pop(name, None)

    def test_default_aliases(self):
        assert count().alias == "count"
        assert sum_("X").alias == "sum_X"
        assert min_("X", "lo").alias == "lo"
