"""Ring-protocol property checks: ``negate`` is a true additive inverse.

Incremental view maintenance retracts a deleted tuple's contribution by
propagating ``negate(annotation)`` through the same ⊕/⊗ message pipeline
the insert used, so ``negate`` must satisfy two laws on the fold carrier:

* additive inverse: ``a ⊕ negate(a) = zero``;
* product compatibility: ``negate(a) ⊗ b = negate(a ⊗ b)`` — negating a
  leaf is the same as negating the joined result, which is what lets a
  delete ride the unchanged sibling messages.

Non-invertible semirings (MIN/MAX — tropical addition has no inverse —
the boolean and the ranking semiring) must be rejected by the checked
entry point ``negate_value`` with a clear error, which is what routes
deletes under them to full refresh.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.query.semiring import (BOOLEAN, SEMIRINGS, negate_value,
                                  product_semiring, ranking_semiring)

values = st.integers(min_value=-10_000, max_value=10_000)
value_lists = st.lists(values, min_size=1, max_size=8)

RINGS = ["sum", "count", "avg"]


def carrier(semiring, xs):
    """A fold-carrier value: ⊕ over lifted column values."""
    acc = semiring.zero
    for x in xs:
        acc = semiring.plus(acc, semiring.lift(x))
    return acc


@pytest.mark.parametrize("name", RINGS)
@given(xs=value_lists)
def test_negate_is_additive_inverse(name, xs):
    semiring = SEMIRINGS[name]
    a = carrier(semiring, xs)
    assert semiring.plus(a, negate_value(semiring, a)) == semiring.zero


@pytest.mark.parametrize("name", RINGS)
@given(xs=value_lists, ys=value_lists)
def test_negate_commutes_with_product(name, xs, ys):
    semiring = SEMIRINGS[name]
    a, b = carrier(semiring, xs), carrier(semiring, ys)
    negated_leaf = semiring.times(negate_value(semiring, a), b)
    negated_join = negate_value(semiring, semiring.times(a, b))
    assert negated_leaf == negated_join


@given(xs=value_lists, ys=value_lists)
def test_product_semiring_negates_coordinatewise(xs, ys):
    product = product_semiring("sum_count",
                               [SEMIRINGS["sum"], SEMIRINGS["count"]])
    assert product.has_inverse
    a = carrier(product, xs)
    assert product.plus(a, negate_value(product, a)) == product.zero
    b = carrier(product, ys)
    assert (product.times(negate_value(product, a), b)
            == negate_value(product, product.times(a, b)))


def test_product_with_noninvertible_factor_has_no_inverse():
    mixed = product_semiring("sum_min", [SEMIRINGS["sum"], SEMIRINGS["min"]])
    assert not mixed.has_inverse


@pytest.mark.parametrize("semiring", [
    SEMIRINGS["min"], SEMIRINGS["max"], BOOLEAN, ranking_semiring(),
], ids=["min", "max", "bool", "ranking"])
def test_noninvertible_semirings_rejected_with_clear_error(semiring):
    with pytest.raises(QueryError, match="no additive inverse"):
        negate_value(semiring, semiring.zero)
