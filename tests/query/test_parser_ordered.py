"""The ``ORDER BY ... LIMIT`` trailer of the datalog-style grammar."""

import pytest

from repro.errors import ParseError
from repro.query.atoms import ConjunctiveQuery
from repro.query.builder import Query
from repro.query.parser import parse_query


class TestOrderByTrailer:
    def test_single_key_defaults_ascending(self):
        q = parse_query("Q(A,B) :- R(A,B) ORDER BY A")
        assert isinstance(q, Query)
        assert q.order_by == (("A", False),)
        assert q.limit is None

    def test_desc_asc_and_multiple_keys(self):
        q = parse_query("Q(A,B) :- R(A,B) ORDER BY B DESC, A ASC")
        assert q.order_by == (("B", True), ("A", False))

    def test_keywords_are_case_insensitive(self):
        q = parse_query("Q(A,B) :- R(A,B) order by B desc limit 4")
        assert q.order_by == (("B", True),)
        assert q.limit == 4

    def test_limit_alone(self):
        q = parse_query("Q(A,B) :- R(A,B) LIMIT 10")
        assert isinstance(q, Query)
        assert q.order_by == ()
        assert q.limit == 10

    def test_trailer_with_selections_and_aggregates(self):
        q = parse_query(
            "Q(A, COUNT(*)) :- R(A,B), S(B,5), A != 2 ORDER BY A LIMIT 3")
        assert q.aggregates and q.limit == 3
        assert q.order_by == (("A", False),)

    def test_trailing_period_still_accepted(self):
        q = parse_query("Q(A,B) :- R(A,B) ORDER BY A LIMIT 2.")
        assert q.limit == 2

    def test_plain_queries_stay_classical(self):
        q = parse_query("Q(A,B) :- R(A,B)")
        assert isinstance(q, ConjunctiveQuery)

    def test_round_trips_through_query_str(self):
        text = "Q(A, B) :- R(A, B) ORDER BY B DESC, A LIMIT 5"
        q = parse_query(text)
        assert parse_query(str(q)).order_by == q.order_by
        assert parse_query(str(q)).limit == q.limit


class TestTrailerErrors:
    def test_order_without_by_is_dangling_text(self):
        with pytest.raises(ParseError, match="dangling text"):
            parse_query("Q(A,B) :- R(A,B) ORDER A")

    def test_order_by_needs_a_column(self):
        with pytest.raises(ParseError, match="ORDER BY column"):
            parse_query("Q(A,B) :- R(A,B) ORDER BY 3")

    def test_limit_needs_a_count(self):
        with pytest.raises(ParseError, match="LIMIT count"):
            parse_query("Q(A,B) :- R(A,B) LIMIT B")

    def test_negative_limit_rejected(self):
        with pytest.raises(ParseError, match="non-negative"):
            parse_query("Q(A,B) :- R(A,B) LIMIT -1")

    def test_order_column_must_be_an_output_column(self):
        with pytest.raises(Exception, match="not an output column"):
            parse_query("Q(A) :- R(A,B) ORDER BY B")

    def test_text_after_the_trailer_is_rejected(self):
        with pytest.raises(ParseError, match="dangling text"):
            parse_query("Q(A,B) :- R(A,B) ORDER BY A LIMIT 2 nonsense")

    def test_body_variables_may_shadow_keywords(self):
        # An atom named LIMIT parses as a body atom, not a trailer.
        q = parse_query("Q(A,B) :- LIMIT(A,B)")
        assert isinstance(q, ConjunctiveQuery)
        assert q.atoms[0].relation == "LIMIT"


class TestTrailerErrorPositions:
    """Dangling text after the trailer must point at the offending token.

    The ``ORDER BY ... LIMIT`` trailer is the grammar's newest path;
    these negative tests pin the exact 1-based line/column every error
    reports, so a refactor cannot silently shift blame one token left or
    right (the classic failure being a dangling ORDER BY comma
    swallowing ``LIMIT`` as a column name and erroring at the count).
    """

    @staticmethod
    def position_of(text: str) -> tuple[int, int, str]:
        with pytest.raises(ParseError) as excinfo:
            parse_query(text)
        return excinfo.value.line, excinfo.value.column, str(excinfo.value)

    def test_dangling_ident_after_limit(self):
        line, column, message = self.position_of(
            "Q(A,B) :- R(A,B) ORDER BY B LIMIT 3 nonsense")
        assert (line, column) == (1, 37)
        assert "nonsense" in message

    def test_second_limit_clause_is_dangling(self):
        line, column, _m = self.position_of(
            "Q(A,B) :- R(A,B) ORDER BY B LIMIT 3 LIMIT 4")
        assert (line, column) == (1, 37)

    def test_double_direction_keyword(self):
        line, column, _m = self.position_of(
            "Q(A,B) :- R(A,B) ORDER BY B DESC ASC")
        assert (line, column) == (1, 34)

    def test_dangling_text_after_trailing_period(self):
        line, column, message = self.position_of(
            "Q(A,B) :- R(A,B) ORDER BY B LIMIT 3 . extra")
        assert (line, column) == (1, 39)
        assert "extra" in message

    def test_positions_track_newlines_inside_the_trailer(self):
        line, column, message = self.position_of(
            "Q(A,B) :- R(A,B)\nORDER BY B\nLIMIT 3 junk")
        assert (line, column) == (3, 9)
        assert "junk" in message

    def test_trailing_comma_at_end_of_order_by(self):
        line, column, message = self.position_of(
            "Q(A,B) :- R(A,B) ORDER BY B,")
        assert (line, column) == (1, 29)
        assert "end of input" in message

    def test_comma_directly_before_limit_blames_the_limit_token(self):
        # Previously the LIMIT keyword was consumed as a column name and
        # the error surfaced at the *count* ("dangling text: int 3"),
        # one token late and with a misleading message.
        line, column, message = self.position_of(
            "Q(A,B) :- R(A,B) ORDER BY B, LIMIT 3")
        assert (line, column) == (1, 30)
        assert "LIMIT clause" in message
        assert "dangling comma" in message

    def test_column_genuinely_named_limit_still_parses(self):
        q = parse_query("Q(A, limit) :- R(A, limit) ORDER BY limit LIMIT 2")
        assert q.order_by == (("limit", False),)
        assert q.limit == 2

    def test_comma_after_limit_count_is_dangling(self):
        line, column, _m = self.position_of(
            "Q(A,B) :- R(A,B) LIMIT 3,")
        assert (line, column) == (1, 25)
