"""Tests for repro.query.hypergraph."""

import pytest

from repro.errors import QueryError
from repro.query.atoms import loomis_whitney_query, triangle_query
from repro.query.hypergraph import Hypergraph


@pytest.fixture
def triangle():
    return triangle_query().hypergraph()


class TestConstruction:
    def test_basic(self, triangle):
        assert triangle.num_vertices() == 3
        assert triangle.num_edges() == 3
        assert triangle.edge_keys == ("R", "S", "T")

    def test_duplicate_vertices_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph(["A", "A"], {"e": ["A"]})

    def test_edge_with_unknown_vertex_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph(["A"], {"e": ["A", "Z"]})

    def test_empty_edge_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph(["A"], {"e": []})

    def test_no_edges_rejected(self):
        with pytest.raises(QueryError):
            Hypergraph(["A"], {})

    def test_multi_hypergraph_repeated_edge_sets(self):
        h = Hypergraph(["A", "B"], {"e1": ["A", "B"], "e2": ["A", "B"]})
        assert h.num_edges() == 2


class TestAccess:
    def test_edge_lookup(self, triangle):
        assert triangle.edge("R") == frozenset({"A", "B"})
        with pytest.raises(QueryError):
            triangle.edge("nope")

    def test_edges_containing(self, triangle):
        assert set(triangle.edges_containing("A")) == {"R", "T"}
        with pytest.raises(QueryError):
            triangle.edges_containing("Z")

    def test_vertex_degree(self, triangle):
        assert triangle.vertex_degree("B") == 2

    def test_covers_all_vertices(self, triangle):
        assert triangle.covers_all_vertices()

    def test_equality(self):
        a = triangle_query().hypergraph()
        b = triangle_query().hypergraph()
        assert a == b
        assert hash(a) == hash(b)


class TestCoverCheck:
    def test_valid_fractional_cover(self, triangle):
        assert triangle.is_cover({"R": 0.5, "S": 0.5, "T": 0.5})
        assert triangle.is_cover({"R": 1.0, "S": 1.0, "T": 0.0})

    def test_invalid_cover_uncovered_vertex(self, triangle):
        assert not triangle.is_cover({"R": 1.0, "S": 0.0, "T": 0.0})

    def test_negative_weight_not_a_cover(self, triangle):
        assert not triangle.is_cover({"R": 1.0, "S": 1.0, "T": -0.5})

    def test_unknown_edge_rejected(self, triangle):
        with pytest.raises(QueryError):
            triangle.is_cover({"X": 1.0})

    def test_lw4_cover(self):
        h = loomis_whitney_query(4).hypergraph()
        third = 1.0 / 3.0
        assert h.is_cover({key: third for key in h.edge_keys})
        assert not h.is_cover({key: 0.2 for key in h.edge_keys})


class TestStructuralOps:
    def test_remove_vertex(self, triangle):
        reduced = triangle.remove_vertex("C")
        assert set(reduced.vertices) == {"A", "B"}
        # S = {B,C} becomes {B}, T = {A,C} becomes {A}.
        assert reduced.edge("S") == frozenset({"B"})
        assert reduced.edge("T") == frozenset({"A"})

    def test_remove_vertex_drops_empty_edges(self):
        h = Hypergraph(["A", "B"], {"e1": ["A"], "e2": ["A", "B"]})
        reduced = h.remove_vertex("A")
        assert "e1" not in reduced.edges
        assert reduced.edge("e2") == frozenset({"B"})

    def test_remove_last_vertex_errors(self):
        h = Hypergraph(["A"], {"e": ["A"]})
        with pytest.raises(QueryError):
            h.remove_vertex("A")

    def test_restrict_to(self, triangle):
        restricted = triangle.restrict_to(["A", "B"])
        assert set(restricted.vertices) == {"A", "B"}
        assert restricted.edge("R") == frozenset({"A", "B"})

    def test_restrict_to_unknown_vertex(self, triangle):
        with pytest.raises(QueryError):
            triangle.restrict_to(["A", "Z"])


class TestResidualComponents:
    def test_star_decomposes_after_conditioning_on_the_hub(self):
        h = Hypergraph(["A", "B", "C", "D"],
                       {"R1": ["A", "B"], "R2": ["A", "C"],
                        "R3": ["A", "D"]})
        assert h.residual_components(["A"]) == (
            frozenset({"B"}), frozenset({"C"}), frozenset({"D"}))

    def test_chain_stays_connected(self):
        h = Hypergraph(["A", "B", "C"], {"R": ["A", "B"], "S": ["B", "C"]})
        assert h.residual_components(["A"]) == (frozenset({"B", "C"}),)

    def test_no_conditioning_gives_plain_components(self):
        h = Hypergraph(["A", "B", "C", "D"],
                       {"R": ["A", "B"], "S": ["C", "D"]})
        assert h.residual_components() == (frozenset({"A", "B"}),
                                           frozenset({"C", "D"}))

    def test_conditioning_set_may_mention_unknown_vertices(self):
        h = Hypergraph(["A", "B"], {"R": ["A", "B"]})
        assert h.residual_components(["A", "Z"]) == (frozenset({"B"}),)

    def test_conditioning_everything_leaves_no_components(self):
        h = Hypergraph(["A", "B"], {"R": ["A", "B"]})
        assert h.residual_components(["A", "B"]) == ()

    def test_order_is_deterministic_by_vertex_position(self):
        h = Hypergraph(["D", "C", "B"], {"R": ["D"], "S": ["C"], "T": ["B"]})
        assert h.residual_components() == (
            frozenset({"D"}), frozenset({"C"}), frozenset({"B"}))
