"""The ordering (ranking) semiring family behind any-k enumeration."""


from repro.query.semiring import (
    RANKING,
    Descending,
    rank_component,
    ranking_semiring,
)


def vector(*pairs):
    return tuple(pairs)


class TestDescending:
    def test_inverts_comparisons(self):
        assert Descending(3) < Descending(1)
        assert not Descending(1) < Descending(3)
        assert Descending(2) == Descending(2)
        assert Descending(2) != Descending(3)

    def test_orders_inside_tuples(self):
        keys = sorted([(Descending(1), 5), (Descending(3), 2),
                       (Descending(3), 1)])
        assert keys == [(Descending(3), 1), (Descending(3), 2),
                        (Descending(1), 5)]

    def test_works_for_strings(self):
        assert Descending("zoe") < Descending("amy")

    def test_rank_component_wraps_only_descending(self):
        assert rank_component(4, False) == 4
        assert rank_component(4, True) == Descending(4)


class TestRankingSemiring:
    def test_family_accessor_returns_the_shared_carrier(self):
        assert ranking_semiring() is RANKING
        assert RANKING.has_product
        assert not RANKING.has_absorbing

    def test_plus_is_lexicographic_min(self):
        a = vector((0, 1), (1, 9))
        b = vector((0, 1), (1, 3))
        assert RANKING.plus(a, b) == b
        assert RANKING.plus(b, a) == b

    def test_plus_respects_descending_components(self):
        a = vector((0, Descending(1)))
        b = vector((0, Descending(5)))
        assert RANKING.plus(a, b) == b  # larger value ranks first DESC

    def test_none_is_the_zero(self):
        a = vector((0, 2))
        assert RANKING.plus(None, a) == a
        assert RANKING.plus(a, None) == a
        assert RANKING.times(None, a) is None
        assert RANKING.times(a, None) is None

    def test_one_is_the_empty_vector(self):
        a = vector((1, 7))
        assert RANKING.times(RANKING.one, a) == a
        assert RANKING.times(a, RANKING.one) == a

    def test_times_merges_disjoint_positions_in_order(self):
        a = vector((0, 5), (3, 1))
        b = vector((1, 2))
        assert RANKING.times(a, b) == vector((0, 5), (1, 2), (3, 1))

    def test_plus_associative_and_commutative_on_shared_support(self):
        vectors = [vector((0, x), (1, y)) for x in (1, 2) for y in (3, 1)]
        for a in vectors:
            for b in vectors:
                assert RANKING.plus(a, b) == RANKING.plus(b, a)
                for c in vectors:
                    assert (RANKING.plus(RANKING.plus(a, b), c)
                            == RANKING.plus(a, RANKING.plus(b, c)))

    def test_times_distributes_over_plus_on_independent_blocks(self):
        # a ⊗ (b ⊕ c) == (a ⊗ b) ⊕ (a ⊗ c): the law that lets subtree
        # minima be computed before merging into the full sort key.
        a_block = [vector((0, x)) for x in (4, 2)]
        bc_block = [vector((1, y)) for y in (9, 1)]
        for a in a_block:
            for b in bc_block:
                for c in bc_block:
                    left = RANKING.times(a, RANKING.plus(b, c))
                    right = RANKING.plus(RANKING.times(a, b),
                                         RANKING.times(a, c))
                    assert left == right

    def test_interleaved_min_is_the_merge_of_block_minima(self):
        # Positions 0 and 2 belong to one independent block, 1 to another:
        # the lexicographic minimum over all combinations equals the merge
        # of the per-block lexicographic minima.
        block_a = [vector((0, 0), (2, 5)), vector((0, 1), (2, 0))]
        block_b = [vector((1, 7)), vector((1, 9))]
        combos = [RANKING.times(a, b) for a in block_a for b in block_b]
        best = None
        for combo in combos:
            best = RANKING.plus(best, combo)
        min_a = RANKING.plus(block_a[0], block_a[1])
        min_b = RANKING.plus(block_b[0], block_b[1])
        assert best == RANKING.times(min_a, min_b)
