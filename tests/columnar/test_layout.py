"""Dictionary store and sorted-layout invariants, including the
registry's version/epoch-checked layout cache."""

from __future__ import annotations

import pytest

from repro.engine.registry import IndexRegistry
from repro.relational.database import Database
from repro.relational.relation import Relation

np = pytest.importorskip("numpy")

from repro.columnar.layout import ColumnarStore, build_layout  # noqa: E402


class TestColumnarStore:
    def test_round_trip_integers(self):
        store = ColumnarStore()
        store.register([5, 1, 3, 1])
        assert [store.decode(store.encode(v)) for v in (1, 3, 5)] == [1, 3, 5]

    def test_round_trip_strings(self):
        store = ColumnarStore()
        store.register(["pear", "apple", "fig"])
        assert store.values == ["apple", "fig", "pear"]
        codes = np.asarray([store.encode(v) for v in ("fig", "pear")])
        assert store.decode_column(codes) == ["fig", "pear"]

    def test_round_trip_floats(self):
        store = ColumnarStore()
        store.register([2.5, 0.5, 1.25])
        assert store.values == [0.5, 1.25, 2.5]
        assert store.decode(store.encode(1.25)) == 1.25
        # Floats rule out exact int64 SUM folds.
        assert store.int_domain() is None

    def test_code_order_is_value_order(self):
        store = ColumnarStore()
        store.register([30, 10, 20])
        codes = [store.encode(v) for v in (10, 20, 30)]
        assert codes == sorted(codes)

    def test_mixed_int_float_is_orderable(self):
        # int/float mix sorts fine in Python — allowed, not an error.
        store = ColumnarStore()
        store.register([1, 2.5, 2])
        assert store.values == [1, 2, 2.5]

    def test_mixed_unorderable_domain_raises_clear_typeerror(self):
        store = ColumnarStore()
        with pytest.raises(TypeError, match="totally ordered value domain"):
            store.register([1, "one"])

    def test_failed_registration_leaves_store_untouched(self):
        store = ColumnarStore()
        store.register([1, 2])
        epoch = store.epoch
        with pytest.raises(TypeError):
            store.register(["three"])
        assert store.values == [1, 2]
        assert store.epoch == epoch

    def test_epoch_bumps_only_on_new_values(self):
        store = ColumnarStore()
        store.register([1, 2])
        epoch = store.epoch
        store.register([2, 1])
        assert store.epoch == epoch
        store.register([3])
        assert store.epoch == epoch + 1

    def test_int_domain_guards_magnitude(self):
        store = ColumnarStore()
        store.register([1, 2**40])
        assert store.int_domain() is None


class TestBuildLayout:
    def test_layout_is_lexicographically_sorted(self):
        store = ColumnarStore()
        rel = Relation("R", ("X", "Y"), [(3, 1), (1, 2), (1, 1), (2, 9)])
        store.register(v for row in rel.tuples for v in row)
        layout = build_layout(rel, ("X", "Y"), store)
        decoded = list(zip(store.decode_column(layout.columns[0]),
                           store.decode_column(layout.columns[1])))
        assert decoded == sorted(rel.tuples)

    def test_layout_respects_column_order(self):
        store = ColumnarStore()
        rel = Relation("R", ("X", "Y"), [(3, 1), (1, 2)])
        store.register(v for row in rel.tuples for v in row)
        layout = build_layout(rel, ("Y", "X"), store)
        decoded = list(zip(store.decode_column(layout.columns[0]),
                           store.decode_column(layout.columns[1])))
        assert decoded == sorted((y, x) for x, y in rel.tuples)

    def test_empty_relation(self):
        store = ColumnarStore()
        rel = Relation("R", ("X", "Y"), [])
        layout = build_layout(rel, ("X", "Y"), store)
        assert layout.n == 0


class TestRegistryLayoutCache:
    def _registry(self):
        db = Database([Relation("R", ("X", "Y"), [(1, 2), (2, 3)])])
        return db, IndexRegistry(db)

    def test_layouts_are_reused_until_version_bump(self):
        db, registry = self._registry()
        request = [("R", "R", ("X", "Y"))]
        first = registry.columnar_layouts(request)["R"]
        assert registry.layout_builds == 1
        assert registry.columnar_layouts(request)["R"] is first
        assert registry.layout_reuses == 1
        db.apply_delta("R", inserts=[(5, 6)])
        rebuilt = registry.columnar_layouts(request)["R"]
        assert rebuilt is not first
        assert registry.layout_builds == 2

    def test_epoch_bump_invalidates_other_layouts(self):
        db, registry = self._registry()
        db.add(Relation("S", ("X", "Y"), [("a", "b")]))
        registry.columnar_layouts([("R", "R", ("X", "Y"))])
        assert registry.columnar_is_warm("R", ("X", "Y"))
        # Registering S's strings bumps the shared dictionary epoch,
        # so R's layout (encoded under the old epoch) goes cold...
        with pytest.raises(TypeError):
            registry.columnar_layouts([("S", "S", ("X", "Y"))])
        # ...unless the new registration failed, which must leave every
        # prior layout valid (the store is transactional).
        assert registry.columnar_is_warm("R", ("X", "Y"))

    def test_warm_count_and_invalidate(self):
        db, registry = self._registry()
        registry.columnar_layouts([("R", "R", ("X", "Y")),
                                   ("R2", "R", ("Y", "X"))])
        assert registry.columnar_warm_count() == 2
        registry.invalidate("R")
        assert registry.columnar_warm_count() == 0

    def test_batch_shares_one_epoch(self):
        db, registry = self._registry()
        db.add(Relation("S", ("X", "Y"), [(7, 8)]))
        layouts = registry.columnar_layouts([("R", "R", ("X", "Y")),
                                             ("S", "S", ("X", "Y"))])
        assert layouts["R"].epoch == layouts["S"].epoch
