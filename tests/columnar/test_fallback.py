"""Fallback transparency: an unsupported feature must never error.

Whether the gap is caught at plan time (priced infeasible, backend
resolves to python with a recorded reason) or at run time (data-dependent
— mixed value domains, non-integer SUM), a ``backend="columnar"`` request
always returns exactly the python backend's answer.
"""

from __future__ import annotations

import pytest

from repro.engine.session import Engine
from repro.relational.relation import Relation

pytest.importorskip("numpy")


def _engine(**kwargs):
    return Engine(relations=[
        Relation("R", ("X", "Y"), [(1, 2), (2, 3), (3, 1), (1, 3)]),
        Relation("S", ("X", "Y"), [(2, 3), (3, 1), (1, 2), (3, 2)]),
    ], cache_results=False, **kwargs)


def _assert_transparent(engine, query, mode="generic", **kwargs):
    python = list(engine.execute(query, mode=mode, **kwargs).tuples)
    columnar = list(engine.execute(query, mode=mode, backend="columnar",
                                   **kwargs).tuples)
    assert columnar == python


class TestPlanTimeFallback:
    def test_cross_atom_comparison_selection(self):
        engine = _engine()
        query = "Q(A,C) :- R(A,B), S(B,C), A < C"
        explanation = engine.explain(query, backend="columnar")
        assert explanation.backend == "python"
        assert "cross-atom" in explanation.backend_fallback
        _assert_transparent(engine, query)

    def test_unsupported_aggregate_kind(self):
        engine = _engine()
        query = "Q(A, AVG(C) AS a) :- R(A,B), S(B,C)"
        explanation = engine.explain(query, backend="columnar")
        assert explanation.backend == "python"
        assert "avg" in explanation.backend_fallback.lower()
        _assert_transparent(engine, query)

    def test_anyk_ranked_mode(self):
        engine = _engine()
        query = "Q(A,B) :- R(A,B) ORDER BY B DESC LIMIT 3"
        explanation = engine.explain(query, backend="columnar",
                                     ranked_mode="anyk")
        assert explanation.backend == "python"
        assert "any-k" in explanation.backend_fallback
        python = list(engine.execute(query, ranked_mode="anyk").tuples)
        columnar = list(engine.execute(query, ranked_mode="anyk",
                                       backend="columnar").tuples)
        assert columnar == python

    def test_strategy_without_columnar_implementation(self):
        engine = _engine()
        query = "Q(A,B,C) :- R(A,B), S(B,C)"
        for mode in ("naive", "binary", "yannakakis"):
            explanation = engine.explain(query, mode=mode,
                                         backend="columnar")
            assert explanation.backend == "python"
            assert "no columnar implementation" in \
                explanation.backend_fallback
            python = list(engine.execute(query, mode=mode).tuples)
            columnar = list(engine.execute(query, mode=mode,
                                           backend="columnar").tuples)
            assert columnar == python

    def test_auto_backend_never_errors_on_unsupported(self):
        engine = _engine()
        query = "Q(A,C) :- R(A,B), S(B,C), A < C"
        explanation = engine.explain(query, backend="auto")
        assert explanation.backend == "python"
        # Both envelopes are still priced (columnar as infeasible).
        assert explanation.costs["backend[columnar]"] == float("inf")
        assert explanation.costs["backend[python]"] < float("inf")


class TestRunTimeFallback:
    def test_mixed_value_domain_degrades_to_python(self):
        # R joins ints, U holds strings: registering both in the shared
        # dictionary is un-orderable, so the columnar run falls back at
        # layout-build time — transparently.
        engine = Engine(relations=[
            Relation("R", ("X", "Y"), [(1, 2), (2, 3)]),
            Relation("U", ("X", "Y"), [("a", "b")]),
        ], cache_results=False)
        # Register the string relation's values first.
        _assert_transparent(engine, "Q(A,B) :- U(A,B)")
        _assert_transparent(engine, "Q(A,B,C) :- R(A,B), R(B,C)")

    def test_float_sum_degrades_exactly(self):
        engine = Engine(relations=[
            Relation("R", ("X", "Y"), [(1, 0.5), (1, 0.25), (2, 1.5)]),
        ], cache_results=False)
        query = "Q(A, SUM(B) AS s) :- R(A,B)"
        # Plan-time sees a supported SUM; the int64-exactness guard only
        # trips at run time once the float domain is registered.
        explanation = engine.explain(query, backend="columnar")
        assert explanation.backend == "columnar"
        _assert_transparent(engine, query)

    def test_huge_int_sum_degrades_exactly(self):
        big = 2**40
        engine = Engine(relations=[
            Relation("R", ("X", "Y"), [(1, big), (1, big + 1), (2, 7)]),
        ], cache_results=False)
        _assert_transparent(engine, "Q(A, SUM(B) AS s) :- R(A,B)")


class TestWithoutNumpy:
    def test_unsupported_reason_without_numpy(self, monkeypatch):
        # When NumPy is missing the dispatcher prices columnar as
        # unsupported instead of raising ImportError.
        import repro.columnar as columnar
        monkeypatch.setattr(columnar, "HAS_NUMPY", False)
        reason = columnar.unsupported_reason()
        assert reason is not None and "NumPy" in reason

    def test_forced_columnar_without_numpy_falls_back(self, monkeypatch):
        import repro.columnar as columnar
        monkeypatch.setattr(columnar, "HAS_NUMPY", False)
        engine = _engine()
        query = "Q(A,B,C) :- R(A,B), S(B,C)"
        explanation = engine.explain(query, backend="columnar")
        assert explanation.backend == "python"
        assert "NumPy" in explanation.backend_fallback
        _assert_transparent(engine, query)
