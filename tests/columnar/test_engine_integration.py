"""Engine-level wiring: explain lines, plan-cache axis, metrics, CLI."""

from __future__ import annotations

import pytest

from repro.engine.session import Engine
from repro.errors import QueryError
from repro.relational.relation import Relation

pytest.importorskip("numpy")

TRIANGLE = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"


def _engine(**kwargs):
    rows = [(i, (i * 3 + 1) % 7) for i in range(7)]
    return Engine(relations=[
        Relation("R", ("X", "Y"), rows),
        Relation("S", ("X", "Y"), rows),
        Relation("T", ("X", "Y"), rows),
    ], **kwargs)


class TestExplain:
    def test_backend_line_and_envelopes(self):
        engine = _engine()
        explanation = engine.explain(TRIANGLE, backend="columnar")
        assert explanation.backend == "columnar"
        assert explanation.backend_fallback is None
        rendered = explanation.render()
        assert "backend:        columnar" in rendered
        # Both backends' priced envelopes appear in the cost estimates.
        assert explanation.costs["backend[columnar]"] < \
            explanation.costs["backend[python]"]
        assert "backend[columnar]" in rendered
        assert "backend[python]" in rendered

    def test_python_default_reports_python(self):
        engine = _engine()
        explanation = engine.explain(TRIANGLE)
        assert explanation.backend == "python"
        assert "backend:        python" in explanation.render()

    def test_fallback_reason_rendered(self):
        engine = _engine()
        rendered = engine.explain(TRIANGLE, mode="naive",
                                  backend="columnar").render()
        assert "fell back" in rendered

    def test_columnar_warm_indexes_track_layout_cache(self):
        engine = _engine(cache_results=False)
        cold = engine.explain(TRIANGLE, backend="columnar")
        assert cold.cold_indexes and not cold.warm_indexes
        engine.execute(TRIANGLE, backend="columnar")
        warm = engine.explain(TRIANGLE, backend="columnar")
        assert warm.warm_indexes and not warm.cold_indexes
        # The python plan's trie cache is a separate axis.
        assert engine.explain(TRIANGLE, mode="generic").cold_indexes


class TestDispatch:
    def test_backend_is_a_plan_cache_axis(self):
        engine = _engine(cache_results=False)
        engine.execute(TRIANGLE)
        assert engine.stats.plan_misses == 1
        engine.execute(TRIANGLE, backend="columnar")
        assert engine.stats.plan_misses == 2
        engine.execute(TRIANGLE, backend="columnar")
        assert engine.stats.plan_misses == 2

    def test_unknown_backend_rejected(self):
        engine = _engine()
        with pytest.raises(QueryError, match="unknown backend"):
            engine.execute(TRIANGLE, backend="vectorized")

    def test_auto_backend_prices_both(self):
        engine = _engine()
        explanation = engine.explain(TRIANGLE, backend="auto")
        costs = explanation.costs
        assert "backend[python]" in costs and "backend[columnar]" in costs
        assert explanation.backend == (
            "columnar" if costs["backend[columnar]"] < costs["backend[python]"]
            else "python")

    def test_execute_many_with_columnar_backend(self):
        engine = _engine(cache_results=False)
        queries = [TRIANGLE, "Q(A) :- R(A,B), S(B,C)"]
        python = [list(r.tuples)
                  for r in engine.execute_many(queries, mode="generic")]
        columnar = [list(r.tuples)
                    for r in engine.execute_many(queries, mode="generic",
                                                 backend="columnar")]
        assert columnar == python


class TestMetrics:
    def test_backend_dispatch_and_layout_counters(self):
        engine = _engine(metrics=True, cache_results=False)
        engine.execute(TRIANGLE)
        engine.execute(TRIANGLE, backend="columnar")
        engine.execute(TRIANGLE, backend="columnar")
        exposition = engine.metrics_exposition()
        assert 'repro_backend_dispatch_total{backend="python"} 1' in exposition
        assert ('repro_backend_dispatch_total{backend="columnar"} 2'
                in exposition)
        assert "repro_columnar_layout_builds_total 3" in exposition
        assert "repro_columnar_layouts 3" in exposition

    def test_layout_gauge_drops_on_mutation(self):
        engine = _engine(metrics=True, cache_results=False)
        engine.execute(TRIANGLE, backend="columnar")
        engine.insert("R", [(99, 100)])
        snapshot = engine.metrics_snapshot()
        assert snapshot["repro_columnar_layouts"] < 3


class TestCli:
    def test_cli_backend_flag(self, capsys):
        from repro.cli import engine_main
        code = engine_main(["--demo", "triangle-skew", "--size", "60",
                            "--backend", "columnar", "--explain",
                            "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend:        columnar" in out
        assert "repro_backend_dispatch_total" in out
        assert "repro_columnar_layouts" in out

    def test_cli_rejects_backend_with_subscribe(self, capsys):
        from repro.cli import engine_main
        with pytest.raises(SystemExit):
            engine_main(["--demo", "triangle-skew", "--subscribe",
                         "--backend", "columnar"])
