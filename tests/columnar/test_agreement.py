"""Randomized cross-backend agreement: columnar must be bit-identical.

The pure-Python executors are the reference oracle.  For every sampled
instance and query shape the columnar backend must return the *same
tuples in the same order* — row sets, aggregate values, and the
deterministic enumeration order all pinned, so a backend switch can
never change an answer.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.session import Engine
from repro.relational.relation import Relation

pytest.importorskip("numpy")


def _random_relation(rng: random.Random, name: str, arity: int,
                     n: int, domain: int) -> Relation:
    attrs = tuple(f"c{i}" for i in range(arity))
    rows = sorted({tuple(rng.randrange(domain) for _ in range(arity))
                   for _ in range(n)})
    return Relation(name, attrs, rows)


def _assert_backends_agree(engine: Engine, query: str, **kwargs) -> None:
    """Execute under both backends (result cache off) and compare exactly.

    Output order is a property of the resolved *strategy* (binary plans
    enumerate differently from WCOJ plans, backend or not), so the
    bit-identity contract is per strategy: with the strategy held fixed,
    the columnar backend must reproduce the python run exactly — rows,
    values, and enumeration order.  Auto dispatch may steer a columnar
    plan onto a different (columnar-capable) strategy than the python
    plan; there the row multisets and aggregate values still agree.
    """
    for mode in ("generic", "leapfrog"):
        python = list(engine.execute(query, mode=mode, **kwargs).tuples)
        columnar = list(engine.execute(query, mode=mode, backend="columnar",
                                       **kwargs).tuples)
        assert columnar == python, \
            f"backend mismatch for {query!r} under {mode}"
    auto_python = list(engine.execute(query, **kwargs).tuples)
    auto_columnar = list(engine.execute(query, backend="auto",
                                        **kwargs).tuples)
    assert sorted(auto_columnar) == sorted(auto_python), \
        f"auto backend row-set mismatch for {query!r}"


QUERY_SHAPES = [
    # Full enumeration, projections (early-distinct and seen-set shapes),
    # constants in atoms, selections, and GROUP BY semiring aggregates.
    "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)",
    "Q(A,B) :- R(A,B), S(B,C)",
    "Q(A) :- R(A,B), S(B,C), T(A,C)",
    "Q(B) :- R(A,B)",
    "Q(C,A) :- R(A,B), S(B,C)",
    "Q(A,B) :- R(A,B), S(B,2)",
    "Q(A) :- R(A,B), S(B,C), A < B",
    "Q(A, COUNT(*) AS n) :- R(A,B), S(B,C)",
    "Q(A, SUM(C) AS s) :- R(A,B), S(B,C)",
    "Q(A, MIN(B) AS lo, MAX(C) AS hi) :- R(A,B), S(B,C)",
    "Q(COUNT(*) AS n) :- R(A,B), S(B,C), T(A,C)",
    "Q(B, COUNT(*) AS n) :- R(A,B), T(A,C)",
]


@pytest.mark.parametrize("seed", range(6))
def test_randomized_agreement(seed):
    rng = random.Random(seed)
    n = rng.choice([0, 1, 5, 40, 120])
    domain = rng.choice([2, 5, 12])
    engine = Engine(relations=[
        _random_relation(rng, "R", 2, n, domain),
        _random_relation(rng, "S", 2, max(n // 2, 0), domain),
        _random_relation(rng, "T", 2, n, domain),
    ], cache_results=False)
    for query in QUERY_SHAPES:
        _assert_backends_agree(engine, query)


def test_empty_and_singleton_relations():
    engine = Engine(relations=[
        Relation("R", ("X", "Y"), []),
        Relation("S", ("X", "Y"), [(1, 2)]),
        Relation("T", ("X", "Y"), [(1, 2), (2, 1)]),
    ], cache_results=False)
    for query in QUERY_SHAPES:
        _assert_backends_agree(engine, query)
    # Group-free aggregates over an empty join yield the identity row.
    empty_agg = "Q(COUNT(*) AS n) :- R(A,B), S(B,C)"
    _assert_backends_agree(engine, empty_agg)


def test_string_domains_agree():
    rng = random.Random(11)
    words = ["ant", "bee", "cat", "dog", "eel", "fox"]
    rows = sorted({(rng.choice(words), rng.choice(words))
                   for _ in range(25)})
    engine = Engine(relations=[
        Relation("R", ("X", "Y"), rows),
        Relation("S", ("X", "Y"), rows),
    ], cache_results=False)
    for query in ["Q(A,B,C) :- R(A,B), S(B,C)",
                  "Q(A) :- R(A,B), S(B,C)",
                  "Q(A, COUNT(*) AS n) :- R(A,B), S(B,C)",
                  "Q(A, MIN(C) AS lo) :- R(A,B), S(B,C)"]:
        _assert_backends_agree(engine, query)


def test_float_domains_agree():
    rng = random.Random(13)
    rows = sorted({(round(rng.uniform(0, 3), 2), round(rng.uniform(0, 3), 2))
                   for _ in range(30)})
    engine = Engine(relations=[
        Relation("R", ("X", "Y"), rows),
        Relation("S", ("X", "Y"), rows),
    ], cache_results=False)
    for query in ["Q(A,B,C) :- R(A,B), S(B,C)",
                  "Q(A, MAX(C) AS hi) :- R(A,B), S(B,C)",
                  # Float SUM degrades to the python fold at run time
                  # (exactness guard) — transparently, same answer.
                  "Q(A, SUM(C) AS s) :- R(A,B), S(B,C)"]:
        _assert_backends_agree(engine, query)


def test_self_join_agreement():
    rng = random.Random(17)
    rows = sorted({(rng.randrange(8), rng.randrange(8)) for _ in range(30)})
    engine = Engine(relations=[Relation("E", ("X", "Y"), rows)],
                    cache_results=False)
    for query in ["Q(A,B,C) :- E(A,B), E(B,C), E(A,C)",
                  "Q(A) :- E(A,B), E(B,C)",
                  "Q(A, COUNT(*) AS n) :- E(A,B), E(B,C)"]:
        _assert_backends_agree(engine, query)


def test_stream_order_parity():
    rng = random.Random(19)
    rows = sorted({(rng.randrange(10), rng.randrange(10))
                   for _ in range(40)})
    engine = Engine(relations=[
        Relation("R", ("X", "Y"), rows),
        Relation("S", ("X", "Y"), rows),
        Relation("T", ("X", "Y"), rows),
    ], cache_results=False)
    for query in ["Q(A,B,C) :- R(A,B), S(B,C), T(A,C)",
                  "Q(A) :- R(A,B), S(B,C)"]:
        assert (list(engine.stream(query, backend="columnar"))
                == list(engine.stream(query)))


def test_forced_strategies_agree():
    rng = random.Random(23)
    rows = sorted({(rng.randrange(9), rng.randrange(9)) for _ in range(35)})
    engine = Engine(relations=[
        Relation("R", ("X", "Y"), rows),
        Relation("S", ("X", "Y"), rows),
        Relation("T", ("X", "Y"), rows),
    ], cache_results=False)
    query = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
    for mode in ("generic", "leapfrog"):
        python = list(engine.execute(query, mode=mode).tuples)
        columnar = list(engine.execute(query, mode=mode,
                                       backend="columnar").tuples)
        assert columnar == python, f"mismatch under forced {mode}"


def test_agreement_across_mutations():
    """Layout invalidation: results track data versions exactly."""
    engine = Engine(relations=[
        Relation("R", ("X", "Y"), [(1, 2), (2, 3)]),
        Relation("S", ("X", "Y"), [(2, 3), (3, 1)]),
    ], cache_results=False)
    query = "Q(A,B,C) :- R(A,B), S(B,C)"
    _assert_backends_agree(engine, query)
    engine.insert("R", [(3, 3), (0, 2)])
    _assert_backends_agree(engine, query)
    engine.apply_delta("S", inserts=[(3, 9)], deletes=[(2, 3)])
    _assert_backends_agree(engine, query)
