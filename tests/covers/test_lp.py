"""Tests for the named-variable LP wrapper."""

import pytest

from repro.covers.lp import LinearProgram, solve_lp
from repro.errors import LPError


class TestLinearProgram:
    def test_simple_minimization(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.minimize({"x": 1.0, "y": 2.0})
        lp.add_constraint("c1", {"x": 1.0, "y": 1.0}, ">=", 4.0)
        solution = lp.solve()
        assert solution.objective == pytest.approx(4.0)
        assert solution.values["x"] == pytest.approx(4.0)
        assert solution.values["y"] == pytest.approx(0.0)

    def test_simple_maximization(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=0.0, upper=3.0)
        lp.maximize({"x": 5.0})
        solution = lp.solve()
        assert solution.objective == pytest.approx(15.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.maximize({"x": 1.0, "y": 1.0})
        lp.add_constraint("eq", {"x": 1.0, "y": 1.0}, "==", 2.0)
        assert lp.solve().objective == pytest.approx(2.0)

    def test_dual_values_reported(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.minimize({"x": 3.0})
        lp.add_constraint("lb", {"x": 1.0}, ">=", 2.0)
        solution = lp.solve()
        # Dual of the binding constraint equals the objective coefficient.
        assert abs(solution.dual_values["lb"]) == pytest.approx(3.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        lp.add_variable("x", lower=0.0, upper=1.0)
        lp.minimize({"x": 1.0})
        lp.add_constraint("c", {"x": 1.0}, ">=", 2.0)
        with pytest.raises(LPError):
            lp.solve()

    def test_unbounded_raises(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.maximize({"x": 1.0})
        with pytest.raises(LPError):
            lp.solve()

    def test_unknown_variable_in_objective(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.minimize({"z": 1.0})

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.minimize({"x": 1.0})
        with pytest.raises(LPError):
            lp.add_constraint("c", {"z": 1.0}, ">=", 0.0)

    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_variable("x")

    def test_bad_operator_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(LPError):
            lp.add_constraint("c", {"x": 1.0}, "<", 1.0)

    def test_no_variables_rejected(self):
        with pytest.raises(LPError):
            LinearProgram().solve()

    def test_size_accessors(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.minimize({"x": 1.0})
        lp.add_constraint("c", {"x": 1.0}, ">=", 0.0)
        assert lp.num_variables == 2
        assert lp.num_constraints == 1

    def test_solution_getitem(self):
        lp = LinearProgram()
        lp.add_variable("x", upper=2.0)
        lp.maximize({"x": 1.0})
        assert lp.solve()["x"] == pytest.approx(2.0)


class TestSolveLpHelper:
    def test_one_shot_helper(self):
        solution = solve_lp(
            objective={"x": 1.0, "y": 1.0},
            constraints=[({"x": 1.0}, ">=", 1.0), ({"y": 1.0}, ">=", 2.0)],
            sense="min",
        )
        assert solution.objective == pytest.approx(3.0)

    def test_helper_rejects_bad_sense(self):
        with pytest.raises(LPError):
            solve_lp({"x": 1.0}, [], sense="maximize-ish")
