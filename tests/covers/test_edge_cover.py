"""Tests for fractional/integral edge covers and rho*."""


import pytest

from repro.covers.edge_cover import (
    fractional_edge_cover,
    fractional_edge_cover_number,
    fractional_vertex_cover_number,
    integral_edge_cover,
    is_fractional_edge_cover,
    weighted_fractional_edge_cover,
)
from repro.errors import LPError
from repro.query.atoms import (
    clique_query,
    cycle_query,
    loomis_whitney_query,
    path_query,
    triangle_query,
)


class TestFractionalEdgeCover:
    def test_triangle_rho_star(self):
        assert fractional_edge_cover_number(triangle_query().hypergraph()) == pytest.approx(1.5)

    def test_triangle_optimal_weights(self):
        cover = fractional_edge_cover(triangle_query().hypergraph())
        assert all(w == pytest.approx(0.5) for w in cover.weights.values())

    def test_even_cycle_rho_star(self):
        assert fractional_edge_cover_number(cycle_query(4).hypergraph()) == pytest.approx(2.0)
        assert fractional_edge_cover_number(cycle_query(6).hypergraph()) == pytest.approx(3.0)

    def test_odd_cycle_rho_star(self):
        assert fractional_edge_cover_number(cycle_query(5).hypergraph()) == pytest.approx(2.5)

    def test_clique_rho_star(self):
        assert fractional_edge_cover_number(clique_query(4).hypergraph()) == pytest.approx(2.0)
        assert fractional_edge_cover_number(clique_query(5).hypergraph()) == pytest.approx(2.5)

    def test_loomis_whitney_rho_star(self):
        for k in (3, 4, 5):
            expected = k / (k - 1)
            assert fractional_edge_cover_number(
                loomis_whitney_query(k).hypergraph()) == pytest.approx(expected)

    def test_path_rho_star(self):
        # A path of k edges over k+1 vertices needs ceil((k+1)/2) edges.
        assert fractional_edge_cover_number(path_query(3).hypergraph()) == pytest.approx(2.0)

    def test_returned_cover_is_valid(self):
        h = clique_query(4).hypergraph()
        cover = fractional_edge_cover(h)
        assert is_fractional_edge_cover(h, cover.weights)


class TestWeightedCover:
    def test_weighted_cover_triangle_balanced(self):
        h = triangle_query().hypergraph()
        costs = {"R": 10.0, "S": 10.0, "T": 10.0}
        cover = weighted_fractional_edge_cover(h, costs)
        assert cover.objective == pytest.approx(15.0)

    def test_weighted_cover_prefers_cheap_edges(self):
        h = triangle_query().hypergraph()
        # T is free: cover A and C with T, B must still be covered by R or S.
        costs = {"R": 5.0, "S": 10.0, "T": 0.0}
        cover = weighted_fractional_edge_cover(h, costs)
        assert cover.objective == pytest.approx(5.0)
        assert cover.weights["T"] >= 1.0 - 1e-6

    def test_missing_cost_rejected(self):
        h = triangle_query().hypergraph()
        with pytest.raises(LPError):
            weighted_fractional_edge_cover(h, {"R": 1.0})

    def test_negative_cost_rejected(self):
        h = triangle_query().hypergraph()
        with pytest.raises(LPError):
            weighted_fractional_edge_cover(h, {"R": 1.0, "S": 1.0, "T": -1.0})


class TestIntegralCover:
    def test_triangle_integral_cover_is_2(self):
        cover = integral_edge_cover(triangle_query().hypergraph())
        assert cover.objective == pytest.approx(2.0)
        assert all(w in (0.0, 1.0) for w in cover.weights.values())

    def test_integral_at_least_fractional(self):
        for query in (triangle_query(), cycle_query(5), clique_query(4),
                      loomis_whitney_query(4)):
            h = query.hypergraph()
            assert integral_edge_cover(h).objective >= (
                fractional_edge_cover_number(h) - 1e-9)

    def test_single_edge(self):
        h = path_query(1).hypergraph()
        assert integral_edge_cover(h).objective == pytest.approx(1.0)


class TestVertexCover:
    def test_triangle_fractional_vertex_cover(self):
        assert fractional_vertex_cover_number(
            triangle_query().hypergraph()) == pytest.approx(1.5)

    def test_path_vertex_cover(self):
        assert fractional_vertex_cover_number(
            path_query(2).hypergraph()) == pytest.approx(1.0)
