"""Tests for the Shannon-type inequality prover."""

import pytest

from repro.infotheory.set_functions import uniform_step_function
from repro.infotheory.shannon import (
    LinearEntropyExpression,
    conditional_term,
    elemental_inequalities,
    find_polymatroid_counterexample,
    is_shannon_valid,
)


def expr(ground, coefficients):
    return LinearEntropyExpression.from_dict(ground, coefficients)


class TestExpression:
    def test_from_dict_merges_duplicates(self):
        e = expr(["A", "B"], {frozenset(["A"]): 1.0, ("A",): 2.0})
        assert e.as_dict()[frozenset(["A"])] == pytest.approx(3.0)

    def test_rejects_foreign_subsets(self):
        with pytest.raises(Exception):
            expr(["A"], {frozenset(["Z"]): 1.0})

    def test_evaluate(self):
        h = uniform_step_function(["A", "B"], threshold=1)
        e = expr(["A", "B"], {("A",): 1.0, ("A", "B"): -1.0})
        assert e.evaluate(h) == pytest.approx(0.0)

    def test_plus_and_scaled(self):
        a = expr(["A", "B"], {("A",): 1.0})
        b = expr(["A", "B"], {("B",): 2.0})
        combined = a.plus(b).scaled(2.0)
        assert combined.as_dict()[frozenset(["A"])] == pytest.approx(2.0)
        assert combined.as_dict()[frozenset(["B"])] == pytest.approx(4.0)

    def test_conditional_term_helper(self):
        e = conditional_term(["A", "B", "C"], ["B", "C"], ["B"], coefficient=2.0)
        d = e.as_dict()
        assert d[frozenset(["B", "C"])] == pytest.approx(2.0)
        assert d[frozenset(["B"])] == pytest.approx(-2.0)

    def test_str_representation(self):
        assert "h(A)" in str(expr(["A"], {("A",): 1.0}))


class TestElementalInequalities:
    def test_count_for_three_variables(self):
        # n monotonicity + C(n,2) * 2^(n-2) submodularity = 3 + 3*2 = 9.
        assert len(list(elemental_inequalities(["A", "B", "C"]))) == 9

    def test_count_for_four_variables(self):
        # 4 + 6 * 4 = 28.
        assert len(list(elemental_inequalities(["A", "B", "C", "D"]))) == 28

    def test_all_hold_on_entropic_like_functions(self):
        h = uniform_step_function(["A", "B", "C"], threshold=2)
        for ineq in elemental_inequalities(["A", "B", "C"]):
            assert ineq.evaluate(h) >= -1e-9


class TestValidityDecisions:
    def test_monotonicity_is_valid(self):
        assert is_shannon_valid(expr(["A", "B"], {("A", "B"): 1.0, ("A",): -1.0}))

    def test_reverse_monotonicity_is_invalid(self):
        assert not is_shannon_valid(expr(["A", "B"], {("A",): 1.0, ("A", "B"): -1.0}))

    def test_submodularity_is_valid(self):
        e = expr(["A", "B"], {("A",): 1.0, ("B",): 1.0, ("A", "B"): -1.0})
        assert is_shannon_valid(e)

    def test_supermodularity_is_invalid(self):
        e = expr(["A", "B"], {("A", "B"): 1.0, ("A",): -1.0, ("B",): -1.0})
        assert not is_shannon_valid(e)

    def test_subadditivity_three_variables(self):
        e = expr(["A", "B", "C"],
                 {("A",): 1.0, ("B",): 1.0, ("C",): 1.0, ("A", "B", "C"): -1.0})
        assert is_shannon_valid(e)

    def test_triangle_shearer_inequality_20(self):
        # h(AB) + h(BC) + h(AC) - 2 h(ABC) >= 0 (eq. 20 of the paper).
        e = expr(["A", "B", "C"],
                 {("A", "B"): 1.0, ("B", "C"): 1.0, ("A", "C"): 1.0,
                  ("A", "B", "C"): -2.0})
        assert is_shannon_valid(e)

    def test_triangle_with_insufficient_weights_invalid(self):
        e = expr(["A", "B", "C"],
                 {("A", "B"): 0.4, ("B", "C"): 0.4, ("A", "C"): 0.4,
                  ("A", "B", "C"): -1.0})
        assert not is_shannon_valid(e)

    def test_counterexample_is_polymatroid_and_violates(self):
        e = expr(["A", "B"], {("A",): 1.0, ("A", "B"): -1.0})
        witness = find_polymatroid_counterexample(e)
        assert witness is not None
        assert witness.is_polymatroid(tolerance=1e-7)
        assert e.evaluate(witness) < -1e-8

    def test_no_counterexample_for_valid_inequality(self):
        e = expr(["A", "B"], {("A", "B"): 1.0, ("A",): -1.0})
        assert find_polymatroid_counterexample(e) is None

    def test_zero_expression_is_valid(self):
        assert is_shannon_valid(expr(["A", "B"], {}))
