"""Tests for Shearer's lemma and Friedgut's inequality."""

import pytest

from repro.covers.edge_cover import fractional_edge_cover
from repro.datagen.loomis_whitney import loomis_whitney_random_instance
from repro.datagen.worstcase import triangle_agm_tight_instance, triangle_skew_instance
from repro.infotheory.entropy import entropy_function_of_relation
from repro.infotheory.shearer import (
    agm_inequality_holds,
    shearer_expression,
    shearer_holds_for,
    shearer_is_valid,
    verify_friedgut_inequality,
)
from repro.joins.generic_join import generic_join
from repro.query.atoms import cycle_query, loomis_whitney_query, triangle_query


class TestShearerValidity:
    def test_valid_for_fractional_cover_triangle(self):
        h = triangle_query().hypergraph()
        assert shearer_is_valid(h, {"R": 0.5, "S": 0.5, "T": 0.5})
        assert shearer_is_valid(h, {"R": 1.0, "S": 1.0, "T": 0.0})

    def test_invalid_below_cover_threshold(self):
        h = triangle_query().hypergraph()
        assert not shearer_is_valid(h, {"R": 0.4, "S": 0.4, "T": 0.4})

    def test_invalid_for_negative_weights(self):
        h = triangle_query().hypergraph()
        assert not shearer_is_valid(h, {"R": 1.0, "S": 1.0, "T": -0.1})

    def test_matches_cover_characterization_on_4cycle(self):
        h = cycle_query(4).hypergraph()
        cover = fractional_edge_cover(h).weights
        assert shearer_is_valid(h, cover)
        broken = dict(cover)
        first = next(iter(broken))
        broken[first] = max(0.0, broken[first] - 0.4)
        assert shearer_is_valid(h, broken) == h.is_cover(broken)

    def test_lw4_cover_valid(self):
        h = loomis_whitney_query(4).hypergraph()
        third = 1.0 / 3.0
        assert shearer_is_valid(h, {k: third for k in h.edge_keys})


class TestShearerOnConcreteEntropies:
    def test_holds_for_output_distribution(self):
        query, database = triangle_agm_tight_instance(64)
        output = generic_join(query, database)
        h = entropy_function_of_relation(output)
        hypergraph = query.hypergraph()
        assert shearer_holds_for(h, hypergraph, {"R": 0.5, "S": 0.5, "T": 0.5})

    def test_expression_evaluates_to_zero_on_tight_instance(self):
        # On the complete tripartite instance the inequality is tight.
        query, database = triangle_agm_tight_instance(64)
        output = generic_join(query, database)
        h = entropy_function_of_relation(output)
        value = shearer_expression(query.hypergraph(),
                                   {"R": 0.5, "S": 0.5, "T": 0.5}).evaluate(h)
        assert value == pytest.approx(0.0, abs=1e-7)


class TestFriedgutAndAGM:
    def test_friedgut_with_unit_weights_equals_agm(self):
        query, database = triangle_agm_tight_instance(49)
        cover = {"R": 0.5, "S": 0.5, "T": 0.5}
        assert verify_friedgut_inequality(query, database, cover)

    def test_friedgut_with_nontrivial_weights(self):
        query, database = triangle_skew_instance(60)
        cover = {"R": 0.5, "S": 0.5, "T": 0.5}
        weights = {
            "R": lambda t: 1.0 + (t[0] % 3),
            "S": lambda t: 2.0,
            "T": lambda t: 1.0 + (t[1] % 2),
        }
        assert verify_friedgut_inequality(query, database, cover, weights)

    def test_friedgut_on_lw_instance(self):
        query, database = loomis_whitney_random_instance(4, 40, seed=5)
        cover = fractional_edge_cover(query.hypergraph()).weights
        assert verify_friedgut_inequality(query, database, cover)

    def test_friedgut_rejects_non_cover(self):
        query, database = triangle_agm_tight_instance(25)
        with pytest.raises(ValueError):
            verify_friedgut_inequality(query, database, {"R": 0.1, "S": 0.1, "T": 0.1})

    def test_agm_inequality_holds_helper(self):
        query, database = triangle_agm_tight_instance(49)
        output = generic_join(query, database)
        cover = {"R": 0.5, "S": 0.5, "T": 0.5}
        assert agm_inequality_holds(query, database, cover, len(output))
        assert not agm_inequality_holds(query, database, cover, len(output) * 100)
