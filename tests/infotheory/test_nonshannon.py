"""Tests for the Zhang–Yeung non-Shannon inequality."""

import random

import pytest

from repro.infotheory.entropy import entropy_function_of_distribution
from repro.infotheory.nonshannon import (
    verify_zhang_yeung_on_entropic,
    zhang_yeung_expression,
    zhang_yeung_is_non_shannon,
    zhang_yeung_violating_polymatroid,
)


class TestZhangYeung:
    def test_expression_requires_four_variables(self):
        with pytest.raises(ValueError):
            zhang_yeung_expression(("A", "B", "C"))

    def test_is_non_shannon(self):
        # The Zhang-Yeung theorem: the inequality is not implied by the
        # Shannon (polymatroid) inequalities.
        assert zhang_yeung_is_non_shannon()

    def test_violating_polymatroid_exists_and_is_polymatroid(self):
        witness = zhang_yeung_violating_polymatroid()
        assert witness is not None
        assert witness.is_polymatroid(tolerance=1e-7)
        assert zhang_yeung_expression().evaluate(witness) < -1e-8

    def test_holds_on_independent_distribution(self):
        distribution = {
            (a, b, c, d): 1 / 16
            for a in (0, 1) for b in (0, 1) for c in (0, 1) for d in (0, 1)
        }
        assert verify_zhang_yeung_on_entropic(("A", "B", "C", "D"), distribution)

    def test_holds_on_deterministic_distribution(self):
        distribution = {(0, 0, 0, 0): 1.0}
        assert verify_zhang_yeung_on_entropic(("A", "B", "C", "D"), distribution)

    def test_holds_on_random_distributions(self):
        rng = random.Random(7)
        for _ in range(15):
            outcomes = [tuple(rng.randrange(3) for _ in range(4)) for _ in range(6)]
            weights = [rng.random() + 0.01 for _ in outcomes]
            total = sum(weights)
            distribution = {}
            for outcome, weight in zip(outcomes, weights):
                distribution[outcome] = distribution.get(outcome, 0.0) + weight / total
            assert verify_zhang_yeung_on_entropic(("A", "B", "C", "D"), distribution)

    def test_holds_on_correlated_distribution(self):
        # C = D = A xor B with uniform A, B.
        distribution = {}
        for a in (0, 1):
            for b in (0, 1):
                c = d = a ^ b
                distribution[(a, b, c, d)] = 0.25
        h = entropy_function_of_distribution(("A", "B", "C", "D"), distribution)
        assert zhang_yeung_expression().evaluate(h) >= -1e-9
