"""Tests for set functions and the polymatroid axioms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotEntropicError
from repro.infotheory.set_functions import (
    SetFunction,
    all_subsets,
    from_callable,
    modular_from_singletons,
    uniform_step_function,
)


class TestAllSubsets:
    def test_counts(self):
        assert len(list(all_subsets(["A", "B", "C"]))) == 8
        assert len(list(all_subsets([]))) == 1

    def test_includes_empty_and_full(self):
        subsets = set(all_subsets(["A", "B"]))
        assert frozenset() in subsets
        assert frozenset({"A", "B"}) in subsets


class TestConstruction:
    def test_requires_complete_values(self):
        with pytest.raises(NotEntropicError):
            SetFunction(["A", "B"], {frozenset(["A"]): 1.0})

    def test_incomplete_allowed_when_flagged(self):
        f = SetFunction(["A", "B"], {frozenset(["A"]): 1.0}, require_complete=False)
        assert f(["B"]) == 0.0

    def test_nonzero_empty_set_rejected(self):
        with pytest.raises(NotEntropicError):
            SetFunction(["A"], {frozenset(): 1.0, frozenset(["A"]): 1.0})

    def test_subset_outside_ground_set_rejected(self):
        with pytest.raises(NotEntropicError):
            SetFunction(["A"], {frozenset(["Z"]): 1.0, frozenset(["A"]): 1.0})

    def test_from_callable(self):
        f = from_callable(["A", "B"], lambda s: len(s))
        assert f(["A", "B"]) == 2.0


class TestAxiomChecks:
    def test_step_function_is_polymatroid(self):
        f = uniform_step_function(["A", "B", "C"], threshold=2)
        assert f.is_polymatroid()
        assert f.is_monotone()
        assert f.is_submodular()
        assert f.is_subadditive()
        assert not f.is_modular()

    def test_modular_function_is_polymatroid_and_modular(self):
        f = modular_from_singletons(["A", "B"], {"A": 1.0, "B": 2.0})
        assert f.is_modular()
        assert f.is_polymatroid()
        assert f(["A", "B"]) == pytest.approx(3.0)

    def test_cardinality_is_modular(self):
        f = from_callable(["A", "B", "C"], lambda s: len(s))
        assert f.is_modular()

    def test_non_monotone_detected(self):
        values = {s: float(len(s)) for s in all_subsets(["A", "B"])}
        values[frozenset(["A", "B"])] = 0.5
        f = SetFunction(["A", "B"], values)
        assert not f.is_monotone()

    def test_non_submodular_detected(self):
        # f(S) = len(S)^2 is supermodular (strictly), not submodular.
        f = from_callable(["A", "B"], lambda s: len(s) ** 2)
        assert not f.is_submodular()

    def test_non_negative_detected(self):
        values = {s: float(len(s)) for s in all_subsets(["A", "B"])}
        values[frozenset(["A"])] = -1.0
        f = SetFunction(["A", "B"], values)
        assert not f.is_nonnegative()

    def test_modular_from_singletons_rejects_negative(self):
        with pytest.raises(NotEntropicError):
            modular_from_singletons(["A"], {"A": -1.0})

    def test_modular_from_singletons_requires_all_values(self):
        with pytest.raises(NotEntropicError):
            modular_from_singletons(["A", "B"], {"A": 1.0})


class TestArithmetic:
    def test_conditional_value(self):
        f = uniform_step_function(["A", "B", "C"], threshold=2)
        # h(ABC | A) = h(ABC) - h(A) = 2 - 1 = 1.
        assert f.conditional(["A", "B", "C"], ["A"]) == pytest.approx(1.0)

    def test_addition_and_scaling(self):
        f = uniform_step_function(["A", "B"], threshold=1)
        g = modular_from_singletons(["A", "B"], {"A": 1.0, "B": 1.0})
        combined = f + g
        assert combined(["A", "B"]) == pytest.approx(1.0 + 2.0)
        doubled = 2 * f
        assert doubled(["A"]) == pytest.approx(2.0)

    def test_add_requires_same_ground_set(self):
        f = uniform_step_function(["A"], threshold=1)
        g = uniform_step_function(["B"], threshold=1)
        with pytest.raises(NotEntropicError):
            f + g

    def test_equality(self):
        f = uniform_step_function(["A", "B"], threshold=1)
        g = uniform_step_function(["A", "B"], threshold=1)
        assert f == g
        assert f != uniform_step_function(["A", "B"], threshold=2)


class TestConeClosureProperties:
    @st.composite
    @staticmethod
    def step_functions(draw):
        threshold = draw(st.integers(0, 3))
        height = draw(st.floats(0.1, 4.0))
        return uniform_step_function(["A", "B", "C"], threshold, height)

    @given(step_functions(), step_functions())
    @settings(max_examples=30, deadline=None)
    def test_sum_of_polymatroids_is_polymatroid(self, f, g):
        assert (f + g).is_polymatroid()

    @given(step_functions(), st.floats(0.0, 5.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_preserves_polymatroid(self, f, factor):
        assert (factor * f).is_polymatroid()
