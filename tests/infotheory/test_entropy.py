"""Tests for entropy functions of distributions and relations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotEntropicError
from repro.infotheory.entropy import (
    entropy_function_of_distribution,
    entropy_function_of_relation,
    entropy_of_distribution,
    mutual_information,
    support_size,
    verify_support_bound,
)
from repro.relational.relation import Relation


class TestScalarEntropy:
    def test_uniform_entropy(self):
        assert entropy_of_distribution([0.25] * 4) == pytest.approx(2.0)

    def test_deterministic_entropy_zero(self):
        assert entropy_of_distribution([1.0]) == pytest.approx(0.0)

    def test_zero_probabilities_ignored(self):
        assert entropy_of_distribution([0.5, 0.5, 0.0]) == pytest.approx(1.0)

    def test_rejects_non_normalized(self):
        with pytest.raises(NotEntropicError):
            entropy_of_distribution([0.5, 0.4])

    def test_rejects_negative(self):
        with pytest.raises(NotEntropicError):
            entropy_of_distribution([1.2, -0.2])


class TestEntropyFunctionOfDistribution:
    def test_independent_uniform_bits(self):
        distribution = {(a, b): 0.25 for a in (0, 1) for b in (0, 1)}
        h = entropy_function_of_distribution(("A", "B"), distribution)
        assert h(["A"]) == pytest.approx(1.0)
        assert h(["B"]) == pytest.approx(1.0)
        assert h(["A", "B"]) == pytest.approx(2.0)
        assert h([]) == 0.0

    def test_perfectly_correlated_bits(self):
        distribution = {(0, 0): 0.5, (1, 1): 0.5}
        h = entropy_function_of_distribution(("A", "B"), distribution)
        assert h(["A", "B"]) == pytest.approx(1.0)
        assert h(["A"]) == pytest.approx(1.0)
        assert mutual_information(h, ["A"], ["B"]) == pytest.approx(1.0)

    def test_result_is_polymatroid(self):
        distribution = {(0, 0, 1): 0.2, (1, 0, 1): 0.3, (1, 1, 0): 0.5}
        h = entropy_function_of_distribution(("A", "B", "C"), distribution)
        assert h.is_polymatroid()

    def test_arity_mismatch_rejected(self):
        with pytest.raises(NotEntropicError):
            entropy_function_of_distribution(("A", "B"), {(1,): 1.0})


class TestEntropyFunctionOfRelation:
    def test_full_set_value_is_log_cardinality(self):
        relation = Relation("R", ("A", "B"), [(i, i % 2) for i in range(8)])
        h = entropy_function_of_relation(relation)
        assert h(["A", "B"]) == pytest.approx(math.log2(8))

    def test_empty_relation_rejected(self):
        with pytest.raises(NotEntropicError):
            entropy_function_of_relation(Relation("R", ("A",), []))

    def test_custom_variable_names(self):
        relation = Relation("R", ("X", "Y"), [(1, 2), (3, 4)])
        h = entropy_function_of_relation(relation, variables=("A", "B"))
        assert h(["A", "B"]) == pytest.approx(1.0)

    def test_variable_count_mismatch(self):
        relation = Relation("R", ("X", "Y"), [(1, 2)])
        with pytest.raises(NotEntropicError):
            entropy_function_of_relation(relation, variables=("A",))

    def test_support_bound_inequality_31(self):
        relation = Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 2), (3, 1)])
        assert verify_support_bound(relation)

    def test_support_size(self):
        relation = Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 2)])
        assert support_size(relation, ("A",)) == 2
        assert support_size(relation, ("A", "B")) == 3

    @given(st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
                   min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_relation_entropy_is_polymatroid(self, tuples):
        relation = Relation("R", ("A", "B", "C"), tuples)
        h = entropy_function_of_relation(relation)
        assert h.is_polymatroid(tolerance=1e-7)

    @given(st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                   min_size=1, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_marginal_entropy_bounded_by_support(self, tuples):
        relation = Relation("R", ("A", "B"), tuples)
        h = entropy_function_of_relation(relation)
        assert h(["A"]) <= math.log2(len(relation.column("A"))) + 1e-9
        assert h(["A", "B"]) == pytest.approx(math.log2(len(relation)))
