"""Engine.subscribe: standing queries maintained under catalog deltas."""

import random

import pytest

from repro.engine.session import Engine
from repro.errors import QueryError
from repro.ivm.subscription import incremental_decision
from repro.joins.instrumentation import OperationCounter
from repro.query.builder import Query
from repro.relational.relation import Relation


def star_engine(groups=10, fanout=4, seed=0, **kwargs):
    """Three arms around a shared key, sized mid power-of-two bucket so
    single-tuple deltas never trip the statistics-drift re-planner."""
    rng = random.Random(seed)
    relations = []
    for i, column in enumerate(("b", "c", "d")):
        rows = set()
        while len(rows) < groups * fanout:
            rows.add((rng.randrange(groups), rng.randrange(500)))
        relations.append(Relation(f"R{i + 1}", ("a", column), rows))
    return Engine(relations=relations, **kwargs)


STAR = "Q(A, SUM(B) AS total, COUNT(*) AS n) :- R1(A,B), R2(A,C), R3(A,D)"


class TestLifecycle:
    def test_initial_result_matches_execute(self):
        engine = star_engine()
        sub = engine.subscribe(STAR)
        cold = engine.execute(STAR, counter=OperationCounter())
        assert sub.result == cold
        assert sub.incremental
        assert sub.last_maintenance.kind == "refresh"

    def test_randomized_insert_delete_stream_matches_cold_execution(self):
        # The acceptance cross-check: a subscribed acyclic SUM/GROUP BY
        # view stays bit-identical to cold re-execution under a random
        # stream of single-tuple inserts AND deletes.
        engine = star_engine(seed=3)
        reference = Engine(database=engine.database)
        sub = engine.subscribe(STAR, replan_threshold=99)
        rng = random.Random(42)
        incremental_inserts = incremental_deletes = 0
        for step in range(60):
            name = f"R{rng.randrange(3) + 1}"
            relation = engine.database.get(name)
            if rng.random() < 0.45 and len(relation) > 4:
                victim = rng.choice(sorted(relation.tuples))
                applied = engine.apply_delta(name, deletes=[victim])
                deleting = True
            else:
                row = (rng.randrange(10), rng.randrange(500))
                applied = engine.apply_delta(name, inserts=[row])
                deleting = False
            if applied.changed and sub.last_maintenance.kind == "incremental":
                if deleting:
                    incremental_deletes += 1
                else:
                    incremental_inserts += 1
            cold = reference.execute(sub.query, counter=OperationCounter())
            assert sub.rows() == sorted(cold.tuples), f"diverged at {step}"
        assert incremental_inserts > 5 and incremental_deletes > 5

    def test_on_change_fires_only_on_result_change(self):
        engine = star_engine()
        seen = []
        sub = engine.subscribe(STAR, on_change=lambda s: seen.append(s.rows()),
                               replan_threshold=99)
        assert seen == []  # initial materialization is not a change
        row = next(iter(engine.database.get("R1").tuples))
        engine.apply_delta("R1", inserts=[row])  # no-op batch
        assert seen == []
        engine.apply_delta("R1", inserts=[(0, 499)])
        assert len(seen) == 1 and seen[0] == sub.rows()

    def test_unsubscribe_stops_maintenance(self):
        engine = star_engine()
        sub = engine.subscribe(STAR)
        stamp = sub.last_maintenance
        assert engine.unsubscribe(sub) is True
        assert engine.unsubscribe(sub) is False
        assert not sub.active
        engine.apply_delta("R1", inserts=[(0, 499)])
        assert sub.last_maintenance is stamp

    def test_engine_insert_routes_through_maintenance(self):
        engine = star_engine()
        sub = engine.subscribe(STAR, replan_threshold=99)
        grown = engine.insert("R1", [(0, 499)])
        assert grown == 1
        assert sub.last_maintenance.kind == "incremental"
        cold = engine.execute(STAR, counter=OperationCounter())
        assert sub.result == cold


class TestFallbacks:
    def test_cyclic_view_refreshes(self):
        engine = Engine(relations=[
            Relation("E", ("x", "y"), {(1, 2), (2, 3), (3, 1)}),
        ])
        sub = engine.subscribe("Q(X) :- E(X,Y), E(Y,Z), E(Z,X)")
        assert not sub.incremental
        assert "cyclic" in sub.fallback_reason
        engine.apply_delta("E", inserts=[(1, 1)])
        assert sub.last_maintenance.kind == "refresh"
        assert sub.rows() == sorted(
            engine.execute(sub.query, counter=OperationCounter()).tuples)

    def test_self_join_delta_refreshes_that_batch_only(self):
        engine = Engine(relations=[
            Relation("E", ("x", "y"), {(i, i + 1) for i in range(20)}),
            Relation("L", ("x", "t"), {(i, i % 3) for i in range(20)}),
        ])
        sub = engine.subscribe("Q(X, T) :- E(X,Y), E(Y,Z), L(X,T)",
                               replan_threshold=99)
        assert sub.incremental
        engine.apply_delta("E", inserts=[(30, 31)])
        assert sub.last_maintenance.kind == "refresh"
        assert "several atoms" in sub.last_maintenance.reason
        # a delta on the non-self-joined relation stays incremental
        engine.apply_delta("L", inserts=[(0, 7)])
        assert sub.last_maintenance.kind == "incremental"
        assert sub.rows() == sorted(
            engine.execute(sub.query, counter=OperationCounter()).tuples)

    def test_min_delete_refreshes_insert_stays_incremental(self):
        engine = star_engine()
        sub = engine.subscribe("Q(A, MIN(B) AS lo) :- R1(A,B), R2(A,C)",
                               replan_threshold=99)
        assert sub.incremental
        engine.apply_delta("R1", inserts=[(0, 499)])
        assert sub.last_maintenance.kind == "incremental"
        victim = next(iter(engine.database.get("R1").tuples))
        engine.apply_delta("R1", deletes=[victim])
        assert sub.last_maintenance.kind == "refresh"
        assert "inverse" in sub.last_maintenance.reason
        assert sub.rows() == sorted(
            engine.execute(sub.query, counter=OperationCounter()).tuples)

    def test_unordered_limit_is_structurally_refresh_only(self):
        decision = incremental_decision(
            Query.coerce("Q(A) :- R1(A,B) LIMIT 3"))
        assert decision is not None and "LIMIT" in decision

    def test_ordered_view_maintains_and_stays_sorted(self):
        engine = star_engine()
        sub = engine.subscribe(
            "Q(A, SUM(B) AS total) :- R1(A,B), R2(A,C) "
            "ORDER BY total DESC LIMIT 3", replan_threshold=99)
        engine.apply_delta("R1", inserts=[(0, 499)])
        cold = engine.execute(sub.query, counter=OperationCounter())
        assert sub.result == cold
        totals = [row[1] for row in sub.rows()]
        assert totals == sorted(totals, reverse=True)


class TestReplanning:
    def test_stats_drift_triggers_replan_and_counts(self):
        engine = star_engine(groups=4, fanout=4)  # small: buckets move fast
        sub = engine.subscribe(STAR, replan_threshold=1)
        fingerprint_before = sub._planned_fingerprint
        engine.apply_delta("R1", inserts=[(0, 1000 + i) for i in range(40)])
        assert sub.last_maintenance.kind == "refresh"
        assert sub.last_maintenance.replanned
        assert sub._planned_fingerprint != fingerprint_before
        assert engine._plans.invalidation_counts().get("stats-drift") == 1
        snapshot = engine.metrics_snapshot()
        key = 'repro_plan_cache_invalidations_total{reason="stats-drift"}'
        assert snapshot[key] == 1.0

    def test_version_bump_on_replace_refreshes_and_counts(self):
        engine = star_engine()
        sub = engine.subscribe(STAR, replan_threshold=99)
        engine.replace_relation(Relation("R3", ("a", "d"), {(0, 1)}))
        assert sub.last_maintenance.kind == "refresh"
        assert sub.last_maintenance.replanned
        assert engine._plans.invalidation_counts() == {"version-bump": 1}
        snapshot = engine.metrics_snapshot()
        key = 'repro_plan_cache_invalidations_total{reason="version-bump"}'
        assert snapshot[key] == 1.0
        assert sub.rows() == sorted(
            engine.execute(sub.query, counter=OperationCounter()).tuples)

    def test_remove_relation_deactivates_dependents(self):
        engine = star_engine()
        sub = engine.subscribe(STAR)
        other = engine.subscribe("Q(A, C) :- R2(A,C)")
        engine.remove_relation("R1")
        assert not sub.active
        assert "removed" in sub.last_maintenance.reason
        assert other.active
        # deactivated subscriptions ignore later deltas
        engine.apply_delta("R2", inserts=[(0, 499)])
        assert other.last_maintenance.kind in ("incremental", "refresh")

    def test_replan_threshold_validates(self):
        engine = star_engine()
        with pytest.raises(QueryError):
            engine.subscribe(STAR, replan_threshold=0)


class TestMetrics:
    def test_delta_and_maintenance_instruments(self):
        engine = star_engine()
        engine.subscribe(STAR, replan_threshold=99)
        engine.apply_delta("R1", inserts=[(0, 499)], deletes=[(0, 499)])
        engine.apply_delta("R1", inserts=[(1, 499)])
        snapshot = engine.metrics_snapshot()
        assert snapshot['repro_deltas_applied_total{kind="insert"}'] == 1.0
        assert snapshot['repro_subscriptions_active'] == 1
        maintained = snapshot[
            'repro_view_maintenance_total{kind="incremental"}']
        refreshed = snapshot['repro_view_maintenance_total{kind="refresh"}']
        assert maintained >= 1.0 and refreshed >= 1.0  # initial refresh

    def test_metrics_disabled_engine_still_maintains(self):
        engine = star_engine(metrics=False)
        sub = engine.subscribe(STAR, replan_threshold=99)
        engine.apply_delta("R1", inserts=[(0, 499)])
        assert sub.result == engine.execute(
            STAR, counter=OperationCounter())
