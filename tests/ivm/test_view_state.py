"""ViewState: the repairable join-tree materialization, in isolation."""

import pytest

from repro.errors import QueryError
from repro.ivm.view import ViewState
from repro.joins.instrumentation import OperationCounter
from repro.query.builder import Query
from repro.relational.database import Database
from repro.relational.relation import Relation


def star_db():
    return Database([
        Relation("R1", ("a", "b"), {(1, 10), (2, 20), (3, 30)}),
        Relation("R2", ("a", "c"), {(1, 5), (2, 6), (3, 7)}),
        Relation("R3", ("a", "d"), {(1, 100), (2, 200)}),
    ])


def spec(text):
    return Query.coerce(text)


def apply_db_and_state(db, state, name, inserts=(), deletes=()):
    """Mirror the engine: delta the catalog, then repair the state."""
    applied = db.apply_delta(name, inserts, deletes)
    return state.apply(name, applied.inserted, applied.deleted)


class TestBuild:
    def test_initial_rows_match_join(self):
        db = star_db()
        q = spec("Q(A, SUM(B) AS total) :- R1(A,B), R2(A,C), R3(A,D)")
        state = ViewState(q, db)
        assert sorted(state.rows()) == [(1, 10), (2, 20)]

    def test_plain_projection_view(self):
        db = star_db()
        state = ViewState(spec("Q(A, C) :- R1(A,B), R2(A,C)"), db)
        assert sorted(state.rows()) == [(1, 5), (2, 6), (3, 7)]

    def test_cyclic_query_rejected(self):
        db = Database([
            Relation("E", ("x", "y"), {(1, 2), (2, 3), (3, 1)}),
        ])
        with pytest.raises(QueryError):
            ViewState(spec("Q(X) :- E(X,Y), E(Y,Z), E(Z,X)"), db)

    def test_single_atom_selections_prefilter(self):
        db = star_db()
        state = ViewState(spec("Q(A, SUM(B) AS t) :- R1(A,B), R2(A,C), B > 15"),
                          db)
        assert sorted(state.rows()) == [(2, 20), (3, 30)]

    def test_cross_atom_residual_selection(self):
        db = star_db()
        state = ViewState(spec("Q(A) :- R1(A,B), R2(A,C), C < B"), db)
        assert sorted(state.rows()) == [(1,), (2,), (3,)]
        # delete the only R2 tuple keeping A=1 alive under C < B
        assert apply_db_and_state(db, state, "R2", deletes=[(1, 5)]) is True
        assert sorted(state.rows()) == [(2,), (3,)]

    def test_group_free_aggregate_empty_join_is_zero_row(self):
        db = Database([
            Relation("R1", ("a", "b"), set()),
            Relation("R2", ("a", "c"), {(1, 5)}),
        ])
        state = ViewState(
            spec("Q(SUM(B) AS s, COUNT(*) AS n) :- R1(A,B), R2(A,C)"), db)
        assert state.rows() == [(0, 0)]


class TestRepair:
    def test_insert_updates_affected_group_only(self):
        db = star_db()
        q = spec("Q(A, SUM(B) AS total, COUNT(*) AS n) :- "
                 "R1(A,B), R2(A,C), R3(A,D)")
        state = ViewState(q, db)
        assert apply_db_and_state(db, state, "R1", inserts=[(1, 990)]) is True
        assert sorted(state.rows()) == [(1, 1000, 2), (2, 20, 1)]

    def test_delete_retracts_contribution(self):
        db = star_db()
        q = spec("Q(A, SUM(B) AS total) :- R1(A,B), R2(A,C), R3(A,D)")
        state = ViewState(q, db)
        assert apply_db_and_state(db, state, "R3", deletes=[(2, 200)]) is True
        assert sorted(state.rows()) == [(1, 10)]

    def test_insert_then_delete_round_trips(self):
        db = star_db()
        q = spec("Q(A, SUM(B) AS total) :- R1(A,B), R2(A,C), R3(A,D)")
        state = ViewState(q, db)
        before = sorted(state.rows())
        apply_db_and_state(db, state, "R1", inserts=[(1, 77)])
        apply_db_and_state(db, state, "R1", deletes=[(1, 77)])
        assert sorted(state.rows()) == before

    def test_irrelevant_relation_is_a_noop(self):
        db = star_db()
        state = ViewState(spec("Q(A, SUM(B) AS t) :- R1(A,B), R2(A,C)"), db)
        assert state.apply("R3", [(9, 9)], []) is False

    def test_delta_dying_in_sibling_subtree_changes_nothing(self):
        db = star_db()
        q = spec("Q(A, SUM(B) AS total) :- R1(A,B), R2(A,C), R3(A,D)")
        state = ViewState(q, db)
        # A=3 joins R1 and R2 but has no R3 partner: the delta dies.
        assert apply_db_and_state(db, state, "R1", inserts=[(3, 999)]) is False
        assert sorted(state.rows()) == [(1, 10), (2, 20)]

    def test_counter_charges_stay_delta_sized(self):
        db = star_db()
        q = spec("Q(A, SUM(B) AS total) :- R1(A,B), R2(A,C), R3(A,D)")
        state = ViewState(q, db)
        counter = OperationCounter()
        applied = db.apply_delta("R1", inserts=[(1, 50)])
        state.apply("R1", applied.inserted, applied.deleted, counter)
        assert 0 < counter.total() < 30


class TestFallbackSignals:
    def test_self_join_delta_returns_none(self):
        db = Database([Relation("E", ("x", "y"), {(1, 2), (2, 3)})])
        state = ViewState(spec("Q(X, Z) :- E(X,Y), E(Y,Z)"), db)
        assert state.apply("E", [(3, 4)], []) is None
        # state untouched: rows still reflect the original contents
        assert sorted(state.rows()) == [(1, 3)]

    def test_min_insert_is_incremental_but_delete_is_not(self):
        db = star_db()
        state = ViewState(spec("Q(A, MIN(B) AS lo) :- R1(A,B)"), db)
        assert not state.supports_deletes
        assert apply_db_and_state(db, state, "R1", inserts=[(1, 3)]) is True
        assert sorted(state.rows()) == [(1, 3), (2, 20), (3, 30)]
        assert state.apply("R1", [], [(1, 3)]) is None

    def test_avg_supports_deletes(self):
        db = star_db()
        state = ViewState(spec("Q(A, AVG(B) AS mean) :- R1(A,B)"), db)
        assert state.supports_deletes
        apply_db_and_state(db, state, "R1", inserts=[(1, 30)])
        assert sorted(state.rows()) == [(1, 20.0), (2, 20.0), (3, 30.0)]
        apply_db_and_state(db, state, "R1", deletes=[(1, 10)])
        assert sorted(state.rows()) == [(1, 30.0), (2, 20.0), (3, 30.0)]
