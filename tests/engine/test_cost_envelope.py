"""The selectivity-aware WCOJ envelope (degree-aware bound on the filtered
instance).

The dispatcher used to price WCOJ strategies with the unfiltered AGM bound
even when a selective constant shrank every scan; the envelope is now the
degree-aware output-size bound of the instance with single-atom selections
applied, min'd with the unfiltered AGM bound — so selective queries get
honestly smaller WCOJ estimates while unselective ones are unchanged.
"""

from repro.bounds.agm import agm_bound
from repro.engine import Engine
from repro.engine.cost import dispatch, selection_envelope
from repro.query.builder import Query
from repro.relational.database import Database
from repro.relational.relation import Relation


def star_database() -> Database:
    # A heavy hub: value 0 dominates; selecting A == 7 is very selective.
    R = Relation("R", ("a", "b"),
                 [(0, b) for b in range(50)] + [(a, a) for a in range(1, 10)])
    S = Relation("S", ("b", "c"),
                 [(b, c) for b in range(50) for c in range(4)])
    return Database([R, S])


def test_envelope_shrinks_under_selective_constant():
    database = star_database()
    spec = Query.coerce("Q(A,B,C) :- R(A,B), S(B,C), A == 7")
    core = spec.core
    agm = agm_bound(core, database)
    sizes_plain, env_plain = selection_envelope(core, database, (), agm)
    sizes_sel, env_sel = selection_envelope(core, database,
                                            spec.all_selections, agm)
    assert env_plain == min(agm.bound, env_plain)
    assert env_sel < env_plain / 10
    assert sizes_sel[0] == 1  # R filtered to the single (7, 7) tuple
    assert sizes_plain[0] == len(database.get("R"))


def test_wcoj_estimates_price_the_filtered_envelope():
    database = star_database()
    spec = Query.coerce("Q(A,B,C) :- R(A,B), S(B,C), A == 7")
    plain = dispatch(Query.coerce("Q(A,B,C) :- R(A,B), S(B,C)").core,
                     database)
    selected = dispatch(spec.core, database, selections=spec.all_selections)
    assert selected.costs["generic"] < plain.costs["generic"] / 10
    assert selected.costs["leapfrog"] < plain.costs["leapfrog"] / 10


def test_unselective_queries_keep_the_agm_envelope():
    database = star_database()
    core = Query.coerce("Q(A,B,C) :- R(A,B), S(B,C)").core
    agm = agm_bound(core, database)
    _sizes, envelope = selection_envelope(core, database, (), agm)
    assert envelope == min(agm.bound, envelope)


def test_explained_costs_reflect_selection():
    engine = Engine(database=star_database())
    selective = engine.explain("Q(A,B,C) :- R(A,B), S(B,C), A == 7")
    full = engine.explain("Q(A,B,C) :- R(A,B), S(B,C)")
    assert selective.costs["generic"] < full.costs["generic"]
