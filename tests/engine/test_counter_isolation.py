"""Regression tests: operation counters are isolated per execution.

Every ``execute()``/``stream()`` call must tally into a *fresh*
:class:`OperationCounter` — a shared counter would report cumulative
session work as if one query did it — and a result-cache hit must report
zero execution work, not the stale counts of the run that populated the
cache.
"""

import itertools

from repro.engine import Engine
from repro.joins.instrumentation import OperationCounter


def _engine(small_triangle_instance, **kwargs):
    _query, database, _expected = small_triangle_instance
    return Engine(database, collect_operations=True, **kwargs)


class TestExecuteIsolation:
    def test_repeated_execute_reports_per_call_work(
            self, small_triangle_instance):
        query, _, expected = small_triangle_instance
        engine = _engine(small_triangle_instance, cache_results=False)
        assert set(engine.execute(query).tuples) == expected
        first = engine.last_operations
        assert set(engine.execute(query).tuples) == expected
        second = engine.last_operations
        assert first is not second
        assert first.total() > 0
        # Identical uncached runs do identical work — a shared counter
        # would make the second total twice the first.
        assert second.total() == first.total()

    def test_result_cache_hit_reports_zero_work(
            self, small_triangle_instance):
        query, _, _ = small_triangle_instance
        engine = _engine(small_triangle_instance)
        engine.execute(query)
        assert engine.last_operations.total() > 0
        engine.execute(query)  # served from the result cache
        assert engine.stats.result_hits == 1
        assert engine.last_operations.total() == 0
        assert engine.last_operations.extra == {}

    def test_execute_many_second_occurrence_is_free(
            self, small_triangle_instance):
        query, _, _ = small_triangle_instance
        engine = _engine(small_triangle_instance)
        engine.execute_many([query, query])
        assert engine.stats.result_hits == 1
        assert engine.last_operations.total() == 0

    def test_caller_counter_still_accumulates_across_calls(
            self, small_triangle_instance):
        # A caller-owned counter aggregates on purpose (that is what
        # passing one in means); isolation applies to engine-owned ones.
        query, _, _ = small_triangle_instance
        engine = _engine(small_triangle_instance, cache_results=False)
        counter = OperationCounter()
        engine.execute(query, counter=counter)
        per_call = counter.total()
        engine.execute(query, counter=counter)
        assert counter.total() == 2 * per_call
        assert engine.last_operations is counter

    def test_counting_disabled_by_default(self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        engine = Engine(database)
        engine.execute(query)
        assert engine.last_operations is None


class TestStreamIsolation:
    def test_stream_counter_is_live_and_fresh(self, small_triangle_instance):
        query, _, _ = small_triangle_instance
        engine = _engine(small_triangle_instance)
        rows = engine.stream(query)
        counter = engine.last_operations
        assert counter.total() == 0  # nothing consumed yet
        next(iter(rows))
        partial = counter.total()
        assert partial > 0
        list(rows)
        assert counter.total() >= partial

    def test_two_streams_do_not_share_a_counter(
            self, small_triangle_instance):
        query, _, _ = small_triangle_instance
        engine = _engine(small_triangle_instance)
        first_rows = engine.stream(query)
        first = engine.last_operations
        second_rows = engine.stream(query)
        second = engine.last_operations
        assert first is not second
        # Interleaved consumption charges each stream's own counter.
        for row in itertools.islice(first_rows, 2):
            pass
        assert first.total() > 0
        assert second.total() == 0
        list(second_rows)
        assert second.total() > 0
