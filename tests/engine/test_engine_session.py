"""Tests for the Engine session: dispatch, caches, streaming, mutation."""

import pytest

from repro.datagen.graphs import erdos_renyi_graph
from repro.datagen.worstcase import triangle_from_graph, triangle_skew_instance
from repro.engine import Engine, dispatch
from repro.engine.cost import MODES, STRATEGIES
from repro.errors import QueryError
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.joins.naive import nested_loop_join
from repro.query.atoms import path_query, triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


def triangle_engine(n=30, m=110, seed=5):
    _, database = triangle_from_graph(erdos_renyi_graph(n, m, seed=seed))
    return Engine(database=database)


def path_database(k=3, seed=9):
    query = path_query(k)
    return query, Database([
        Relation(atom.relation, ("A", "B"),
                 erdos_renyi_graph(15, 45, seed=seed + i).tuples)
        for i, atom in enumerate(query.atoms)
    ])


class TestExecuteCorrectness:
    def test_matches_generic_join(self):
        engine = triangle_engine()
        query = triangle_query()
        assert engine.execute(query) == generic_join(query, engine.database)

    def test_every_mode_agrees_on_cyclic_query(self):
        engine = triangle_engine()
        query = triangle_query()
        expected = nested_loop_join(query, engine.database)
        for mode in ("auto", "naive", "binary", "generic", "leapfrog"):
            assert engine.execute(query, mode=mode) == expected, mode

    def test_every_mode_agrees_on_acyclic_query(self):
        query, database = path_database()
        engine = Engine(database=database)
        expected = nested_loop_join(query, database)
        for mode in MODES:
            assert engine.execute(query, mode=mode) == expected, mode

    def test_string_queries_are_parsed(self):
        engine = triangle_engine()
        result = engine.execute("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        assert result == generic_join(triangle_query(), engine.database)

    def test_projecting_head_deduplicates(self):
        engine = triangle_engine()
        result = engine.execute("Q(A) :- R(A,B), S(B,C), T(A,C)")
        full = generic_join(triangle_query(), engine.database)
        assert result == full.project(("A",))

    def test_permuted_full_head_reorders_columns(self):
        engine = triangle_engine()
        result = engine.execute("Q(C,B,A) :- R(A,B), S(B,C), T(A,C)",
                                mode="generic")
        full = generic_join(triangle_query(), engine.database)
        assert result.attributes == ("C", "B", "A")
        assert result.tuples == {(c, b, a) for a, b, c in full.tuples}

    def test_yannakakis_on_cyclic_query_raises(self):
        engine = triangle_engine()
        with pytest.raises(QueryError):
            engine.execute(triangle_query(), mode="yannakakis")

    def test_unknown_mode_raises(self):
        engine = triangle_engine()
        with pytest.raises(QueryError):
            engine.execute(triangle_query(), mode="quantum")

    def test_constructor_rejects_database_and_relations(self):
        with pytest.raises(QueryError):
            Engine(database=Database(),
                   relations=[Relation("R", ("A",), [(1,)])])


class TestPlanCache:
    def test_repeat_is_a_plan_hit(self):
        engine = triangle_engine()
        engine.execute(triangle_query())
        assert engine.stats.plan_misses == 1
        engine.execute(triangle_query())
        assert engine.stats.plan_hits == 1

    def test_isomorphic_query_is_a_plan_hit(self):
        engine = triangle_engine()
        engine.execute("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        engine.execute("P(X,Y,Z) :- T(X,Z), R(X,Y), S(Y,Z)")
        assert engine.stats.plan_hits == 1
        assert engine.stats.plan_misses == 1

    def test_isomorphic_results_agree_up_to_renaming(self):
        engine = triangle_engine()
        first = engine.execute("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        second = engine.execute("P(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z)")
        assert second.attributes == ("X", "Y", "Z")
        assert second.tuples == first.tuples

    def test_different_modes_cached_separately(self):
        engine = triangle_engine()
        engine.execute(triangle_query(), mode="generic")
        engine.execute(triangle_query(), mode="leapfrog")
        assert engine.stats.plan_misses == 2

    def test_size_regime_change_replans(self):
        engine = triangle_engine()
        engine.execute(triangle_query())
        # Quadruple R: the size bucket moves, so the plan key changes.
        extra = [(1000 + i, 2000 + i) for i in range(3 * len(engine.database["R"]))]
        engine.insert("R", extra)
        engine.execute(triangle_query())
        assert engine.stats.plan_misses == 2


class TestResultCacheAndInvalidation:
    def test_repeat_serves_cached_result(self):
        engine = triangle_engine()
        first = engine.execute(triangle_query())
        second = engine.execute(triangle_query())
        assert second is first  # the identical cached object
        assert engine.stats.result_hits == 1

    def test_insert_invalidates_results_and_indexes(self):
        engine = triangle_engine()
        query = triangle_query()
        engine.execute(query, mode="generic")
        builds = engine.stats.index_builds
        assert builds > 0
        grown = engine.insert("R", [(0, 1), (1, 2)])
        assert grown >= 0
        engine.execute(query, mode="generic")
        assert engine.stats.result_hits == 0
        assert engine.stats.index_builds > builds
        assert engine.execute(query, mode="naive") == \
            nested_loop_join(query, engine.database)

    def test_insert_returns_new_tuple_count(self):
        engine = Engine(relations=[Relation("R", ("A", "B"), [(1, 2)])])
        assert engine.insert("R", [(1, 2), (3, 4)]) == 1

    def test_noop_insert_keeps_caches_warm(self):
        engine = triangle_engine()
        query = triangle_query()
        engine.execute(query, mode="generic")
        version = engine.database.version("R")
        assert engine.insert("R", list(engine.database["R"].tuples)[:2]) == 0
        assert engine.database.version("R") == version
        engine.execute(query, mode="generic")
        assert engine.stats.result_hits == 1

    def test_atom_permuted_isomorphic_query_is_a_result_hit(self):
        engine = triangle_engine()
        first = engine.execute("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        second = engine.execute("P(X,Y,Z) :- T(X,Z), S(Y,Z), R(X,Y)")
        assert engine.stats.result_hits == 1
        assert second.tuples == first.tuples
        assert second.attributes == ("X", "Y", "Z")

    def test_replace_relation_swaps_contents(self):
        engine = triangle_engine()
        query = triangle_query()
        engine.execute(query)
        empty = Relation("R", ("A", "B"), [])
        engine.replace_relation(empty)
        assert engine.execute(query).is_empty()

    def test_mutation_evicts_dead_result_entries(self):
        engine = triangle_engine()
        engine.execute(triangle_query())
        assert len(engine._results) == 1
        engine.insert("R", [(700, 701)])
        assert len(engine._results) == 0  # eager, not capacity, eviction

    def test_warm_indexes_survive_unrelated_mutation(self):
        engine = triangle_engine()
        engine.execute(triangle_query(), mode="generic")
        engine.insert("S", [(500, 501)])
        assert engine.registry.is_warm(
            "R", ("A", "B")) or engine.registry.is_warm("R", ("B", "A"))

    def test_caches_can_be_disabled(self):
        _, database = triangle_from_graph(erdos_renyi_graph(20, 70, seed=6))
        engine = Engine(database=database, cache_results=False)
        first = engine.execute(triangle_query())
        second = engine.execute(triangle_query())
        assert first == second
        assert second is not first
        assert engine.stats.result_hits == 0


class TestStreamingAndLimit:
    def test_stream_yields_full_result(self):
        engine = triangle_engine()
        query = triangle_query()
        streamed = set(engine.stream(query, mode="generic"))
        assert streamed == set(generic_join(query, engine.database).tuples)

    def test_limit_truncates(self):
        engine = triangle_engine()
        result = engine.execute(triangle_query(), mode="generic", limit=4)
        assert len(result) == 4

    def test_limit_pushdown_does_less_work(self):
        query, database = triangle_skew_instance(400)
        engine = Engine(database=database, cache_results=False)
        full = OperationCounter()
        engine.execute(query, mode="generic", counter=full)
        limited = OperationCounter()
        engine.execute(query, mode="generic", limit=1, counter=limited)
        assert limited.search_nodes < full.search_nodes / 10

    def test_limit_is_deterministic_regardless_of_cache_warmth(self):
        # Limited queries bypass the result cache, so the identical call
        # must return the same prefix on a warm engine as on a cold one.
        warm = triangle_engine()
        query = triangle_query()
        full = warm.execute(query)  # warm the result cache
        warm_limited = warm.execute(query, limit=3)
        cold_limited = triangle_engine().execute(query, limit=3)
        assert warm_limited == cold_limited
        assert warm_limited.tuples <= full.tuples
        assert warm.stats.result_hits == 0  # the limited call never hit

    def test_limit_larger_than_result_is_complete(self):
        engine = triangle_engine()
        full = engine.execute(triangle_query())
        assert engine.execute(triangle_query(), limit=10**6) == full

    def test_negative_limit_raises_query_error(self):
        engine = triangle_engine()
        for call in (engine.execute, engine.stream):
            with pytest.raises(QueryError):
                call(triangle_query(), limit=-1)
        with pytest.raises(QueryError):
            engine.execute_many([triangle_query()], limit=-1)


class TestExecuteMany:
    def test_batch_matches_individual_execution(self):
        engine = triangle_engine()
        queries = [
            "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)",
            "P(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z)",
        ]
        batch = engine.execute_many(queries, mode="generic")
        assert batch[0].tuples == batch[1].tuples
        assert batch[0] == generic_join(triangle_query(), engine.database)

    def test_batch_shares_index_builds(self):
        engine = triangle_engine()
        queries = ["Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"] * 5
        engine.execute_many(queries, mode="leapfrog")
        # 3 tries built once; the 4 repeats are result-cache hits.
        assert engine.stats.index_builds == 3
        assert engine.stats.result_hits == 4


class TestExplain:
    def test_explain_reports_dispatch_evidence(self):
        query, database = triangle_skew_instance(200)
        engine = Engine(database=database)
        explanation = engine.explain(query)
        assert explanation.strategy in STRATEGIES
        assert not explanation.acyclic
        assert explanation.costs["yannakakis"] == float("inf")
        assert explanation.agm_bound > 0
        assert explanation.plan_cache == "miss"
        rendered = explanation.render()
        assert "strategy" in rendered and "AGM bound" in rendered

    def test_explain_warms_the_plan_cache(self):
        engine = triangle_engine()
        query = triangle_query()
        assert engine.explain(query).plan_cache == "miss"
        assert engine.explain(query).plan_cache == "hit"

    def test_explain_tracks_result_cache(self):
        engine = triangle_engine()
        query = triangle_query()
        assert not engine.explain(query).result_cached
        engine.execute(query)
        assert engine.explain(query).result_cached

    def test_skew_dispatch_prefers_wcoj_over_binary(self):
        # The point of this instance is that pairwise plans pay the
        # hub-times-hub blowup: any skew-safe strategy (a WCOJ engine,
        # or the heavy/light hybrid whose per-key residual sub-plans
        # bind the hub before any pairwise work) may win, binary never.
        query, database = triangle_skew_instance(300)
        decision = dispatch(query, database)
        assert decision.strategy in ("generic", "leapfrog", "hybrid")
        assert decision.costs["binary"] > decision.costs["generic"]

    def test_acyclic_dispatch_is_feasible_for_yannakakis(self):
        query, database = path_database()
        decision = dispatch(query, database)
        assert decision.acyclic
        assert decision.costs["yannakakis"] < float("inf")
