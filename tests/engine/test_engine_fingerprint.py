"""Tests for canonical query forms (the plan-cache key)."""

from repro.engine.fingerprint import canonical_query
from repro.query.atoms import Atom, ConjunctiveQuery, triangle_query
from repro.query.parser import parse_query


class TestCanonicalForm:
    def test_identical_queries_share_form(self):
        a = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        b = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        assert canonical_query(a).form == canonical_query(b).form

    def test_renamed_variables_share_form(self):
        a = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        b = parse_query("P(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z)")
        assert canonical_query(a).form == canonical_query(b).form

    def test_permuted_atoms_share_form(self):
        a = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        b = parse_query("Q(A,B,C) :- T(A,C), R(A,B), S(B,C)")
        assert canonical_query(a).form == canonical_query(b).form

    def test_query_name_does_not_matter(self):
        a = ConjunctiveQuery([Atom("R", ("A", "B"))], name="first")
        b = ConjunctiveQuery([Atom("R", ("A", "B"))], name="second")
        assert canonical_query(a).form == canonical_query(b).form

    def test_different_relations_differ(self):
        a = parse_query("R(A,B), S(B,C)")
        b = parse_query("R(A,B), U(B,C)")
        assert canonical_query(a).form != canonical_query(b).form

    def test_different_join_structure_differs(self):
        chain = parse_query("R(A,B), S(B,C)")
        fork = parse_query("R(A,B), S(A,C)")
        assert canonical_query(chain).form != canonical_query(fork).form

    def test_head_projection_differs_from_full(self):
        full = parse_query("Q(A,B) :- R(A,B)")
        projected = parse_query("Q(A) :- R(A,B)")
        assert canonical_query(full).form != canonical_query(projected).form

    def test_head_order_is_part_of_the_form(self):
        ab = parse_query("Q(A,B) :- R(A,B)")
        ba = parse_query("Q(B,A) :- R(A,B)")
        assert canonical_query(ab).form != canonical_query(ba).form


class TestTranslation:
    def test_variable_round_trip(self):
        query = parse_query("P(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z)")
        canon = canonical_query(query)
        for variable in query.variables:
            canonical_name = canon.to_canonical[variable]
            assert canon.from_canonical[canonical_name] == variable

    def test_translate_variables_inverts_canonicalize(self):
        query = triangle_query()
        canon = canonical_query(query)
        order = ("B", "C", "A")
        assert canon.translate_variables(
            canon.canonicalize_variables(order)) == order

    def test_atom_order_is_a_permutation(self):
        query = parse_query("Q(A,B,C) :- T(A,C), R(A,B), S(B,C)")
        canon = canonical_query(query)
        assert sorted(canon.atom_order) == [0, 1, 2]

    def test_atom_position_round_trip(self):
        query = parse_query("Q(A,B,C) :- T(A,C), R(A,B), S(B,C)")
        canon = canonical_query(query)
        for i in range(len(query.atoms)):
            assert canon.atom_index_at(canon.canonical_position_of(i)) == i

    def test_isomorphic_queries_map_to_same_relations_per_position(self):
        # The atom at canonical position p must reference the same relation
        # in both queries — that is what makes cached plans transferable.
        a = parse_query("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)")
        b = parse_query("P(Z,X,Y) :- T(Z,Y), S(X,Y), R(Z,X)")
        ca, cb = canonical_query(a), canonical_query(b)
        assert ca.form == cb.form
        for position in range(3):
            assert (a.atoms[ca.atom_index_at(position)].relation
                    == b.atoms[cb.atom_index_at(position)].relation)

    def test_self_join_form_is_stable(self):
        a = parse_query("E(A,B), E(B,C), E(A,C)")
        b = parse_query("E(X,Y), E(Y,Z), E(X,Z)")
        assert canonical_query(a).form == canonical_query(b).form
