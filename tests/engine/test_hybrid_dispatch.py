"""Hybrid heavy/light plans as a first-class dispatch citizen.

Dispatch decisions (hybrid wins skewed instances, is infeasible on
uniform ones), payload and plan-cache round-trips (including isomorphic
renames), ``explain()``'s hybrid-split report, forced-mode interactions
with the aggregate/ranked mode axes, and the IVM fallback-matrix row.
"""

import pytest

from repro.datagen.graphs import erdos_renyi_graph, zipf_triangle_instance
from repro.engine import Engine
from repro.engine.cost import dispatch
from repro.errors import QueryError
from repro.query.builder import Q, Query
from repro.query.semiring import count
from repro.relational.database import Database

TRIANGLE = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"


def zipf_engine(n=400, skew=1.5, seed=0):
    _query, database = zipf_triangle_instance(n, skew=skew, seed=seed)
    return Engine(database)


def uniform_engine(vertices=60, edges=240):
    return Engine(Database([
        erdos_renyi_graph(vertices, edges, seed=1, name="R",
                          attributes=("A", "B")),
        erdos_renyi_graph(vertices, edges, seed=2, name="S",
                          attributes=("B", "C")),
        erdos_renyi_graph(vertices, edges, seed=3, name="T",
                          attributes=("A", "C")),
    ]))


class TestDispatchDecision:
    def test_auto_picks_hybrid_on_zipf_triangle(self):
        query, database = zipf_triangle_instance(400, skew=1.5, seed=0)
        decision = dispatch(query, database)
        assert decision.strategy == "hybrid"
        assert decision.costs["hybrid"] < decision.costs["generic"]
        assert decision.costs["hybrid"] < decision.costs["binary"]

    def test_payload_names_split_and_per_side_strategies(self):
        query, database = zipf_triangle_instance(400, skew=1.5, seed=0)
        decision = dispatch(query, database)
        tag, variable, threshold, heavy, light = decision.payload
        assert tag == "hybrid"
        assert variable in ("A", "B", "C")
        assert threshold > 1.0
        # A triangle's residual after binding the skew variable is a
        # 2-path, so the heavy side runs per-key Yannakakis sub-plans.
        assert heavy == "yannakakis"
        assert light == "generic"

    def test_uniform_instance_prices_hybrid_infeasible(self):
        engine = uniform_engine()
        decision = dispatch(Query.coerce(TRIANGLE).core, engine.database)
        assert decision.strategy != "hybrid"
        assert decision.costs["hybrid"] == float("inf")

    def test_side_costs_are_reported(self):
        engine = zipf_engine()
        explanation = engine.explain(TRIANGLE)
        assert "hybrid[heavy]" in explanation.costs
        assert "hybrid[light]" in explanation.costs
        assert (explanation.costs["hybrid"]
                >= explanation.costs["hybrid[heavy]"])


class TestExplainReport:
    def test_hybrid_split_lines(self):
        engine = zipf_engine()
        explanation = engine.explain(TRIANGLE)
        assert explanation.strategy == "hybrid"
        assert len(explanation.hybrid_split) == 3
        skew_line, heavy_line, light_line = explanation.hybrid_split
        assert "skew variable" in skew_line
        assert "degree threshold" in skew_line
        assert "keys" in heavy_line and "-> yannakakis" in heavy_line
        assert "per-key degree" in light_line and "-> generic" in light_line
        rendered = explanation.render()
        assert "hybrid split:" in rendered

    def test_non_hybrid_plans_have_no_split(self):
        engine = uniform_engine()
        explanation = engine.explain(TRIANGLE)
        assert explanation.hybrid_split == ()
        assert "hybrid split:" not in explanation.render()


class TestPlanCache:
    def test_repeat_query_hits_plan_cache(self):
        engine = zipf_engine()
        engine.execute(TRIANGLE, mode="hybrid")
        engine.execute(TRIANGLE + " ", mode="hybrid")  # same canonical form
        assert engine.stats.plan_hits >= 1

    def test_isomorphic_rename_round_trips_payload(self):
        engine = zipf_engine()
        first = engine.execute(TRIANGLE, mode="hybrid")
        renamed = "Q(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z)"
        served = engine.execute(renamed, mode="hybrid")
        assert engine.stats.plan_hits == 1
        oracle = engine.execute(renamed, mode="generic")
        assert sorted(served.tuples) == sorted(oracle.tuples)
        assert sorted(first.tuples) == sorted(served.tuples)


class TestForcedModeInteractions:
    def test_forced_hybrid_executes(self):
        engine = zipf_engine()
        result = engine.execute(TRIANGLE, mode="hybrid")
        oracle = engine.execute(TRIANGLE, mode="generic")
        assert sorted(result.tuples) == sorted(oracle.tuples)

    def test_forced_hybrid_rejects_in_recursion_aggregation(self):
        engine = zipf_engine()
        q = (Q.from_("R", "A", "B").from_("S", "B", "C")
             .from_("T", "A", "C").select("A", count()).group_by("A"))
        with pytest.raises(QueryError, match="cannot aggregate in-recursion"):
            engine.execute(q, mode="hybrid", aggregate_mode="recursion")
        folded = engine.execute(q, mode="hybrid", aggregate_mode="fold")
        oracle = engine.execute(q, mode="generic")
        assert sorted(folded.tuples) == sorted(oracle.tuples)

    def test_forced_hybrid_rejects_anyk(self):
        engine = zipf_engine()
        q = (Q.from_("R", "A", "B").from_("S", "B", "C")
             .from_("T", "A", "C").select("A", "B").order_by("-A").limit(3))
        with pytest.raises(QueryError, match="cannot enumerate in rank"):
            engine.execute(q, mode="hybrid", ranked_mode="anyk")
        assert (list(engine.stream(q, mode="hybrid", ranked_mode="drain"))
                == list(engine.stream(q, mode="generic",
                                      ranked_mode="drain")))


class TestIvmFallback:
    # An acyclic shape: the structural decision (cyclic hypergraphs never
    # maintain incrementally) does not fire, so the hybrid-specific row of
    # the fallback matrix is what decides.
    STAR = "Q(A,B,C) :- R(A,B), T(A,C)"

    def test_hybrid_plan_falls_back_to_tracked_refresh(self):
        engine = zipf_engine()
        sub = engine.subscribe(self.STAR, mode="hybrid")
        assert sub.fallback_reason is not None
        assert "hybrid" in sub.fallback_reason
        assert "partition boundary" in sub.fallback_reason
        assert not sub.incremental

    def test_cyclic_hybrid_subscription_reports_structural_reason(self):
        # Cyclic queries were never maintainable; a hybrid plan does not
        # change that reason, and the refresh path still serves deltas.
        engine = zipf_engine()
        sub = engine.subscribe(TRIANGLE)
        assert "cyclic" in sub.fallback_reason
        assert not sub.incremental

    def test_deltas_keep_hybrid_subscription_correct(self):
        engine = zipf_engine(n=250)
        sub = engine.subscribe(self.STAR, mode="hybrid")
        engine.apply_delta("R", inserts=[(0, 70 + i) for i in range(10)])
        engine.apply_delta("T", deletes=list(
            engine.database.get("T").tuples)[:5])
        assert sub.last_maintenance.kind == "refresh"
        oracle = Engine(engine.database).execute(self.STAR, mode="generic")
        assert sorted(sub.result.tuples) == sorted(oracle.tuples)
