"""The hybrid envelope in the cost model.

The heavy/light envelope must behave like the theory says: on skewed
statistics it undercuts every pure strategy (that is its reason to
exist), on uniform statistics it is infeasible (no value beats the
|R|^(1/2) threshold, so the split would degenerate into pure work plus
partition passes), and its side terms decompose the reported total.
"""

import pytest

from repro.datagen.graphs import erdos_renyi_graph, zipf_triangle_instance
from repro.datagen.worstcase import triangle_skew_instance
from repro.engine.cost import dispatch, plan_hybrid
from repro.relational.database import Database

PURE = ("generic", "leapfrog", "yannakakis", "binary", "naive")


def uniform_triangle(vertices=60, edges=240):
    query, _ = zipf_triangle_instance(8)  # just the triangle query shape
    return query, Database([
        erdos_renyi_graph(vertices, edges, seed=1, name="R",
                          attributes=("A", "B")),
        erdos_renyi_graph(vertices, edges, seed=2, name="S",
                          attributes=("B", "C")),
        erdos_renyi_graph(vertices, edges, seed=3, name="T",
                          attributes=("A", "C")),
    ])


class TestSkewedEnvelope:
    @pytest.mark.parametrize("skew", (1.2, 1.5, 2.0))
    @pytest.mark.parametrize("n", (300, 600))
    def test_hybrid_undercuts_every_pure_strategy_on_zipf(self, skew, n):
        query, database = zipf_triangle_instance(n, skew=skew, seed=0)
        decision = dispatch(query, database)
        best_pure = min(decision.costs[s] for s in PURE)
        assert decision.costs["hybrid"] < best_pure
        assert decision.strategy == "hybrid"

    def test_hybrid_wins_on_single_hub_star_stats(self):
        # The classic skew-strikes-back star: one hub makes every
        # pairwise order quadratic; the hybrid isolates it as the one
        # heavy key and must price below binary (and win dispatch).
        query, database = triangle_skew_instance(300)
        decision = dispatch(query, database)
        assert decision.costs["hybrid"] < decision.costs["binary"]
        assert decision.strategy == "hybrid"

    def test_envelope_grows_with_instance_size(self):
        costs = []
        for n in (200, 400, 800):
            query, database = zipf_triangle_instance(n, skew=1.5, seed=0)
            costs.append(dispatch(query, database).costs["hybrid"])
        assert costs == sorted(costs)

    def test_side_terms_decompose_the_total(self):
        query, database = zipf_triangle_instance(400, skew=1.5, seed=0)
        costs = dispatch(query, database).costs
        # total = partition passes + heavy side + light side, so the
        # reported side terms never exceed it and their sum is a lower
        # bound accounting for everything but the partition scans.
        assert costs["hybrid[heavy]"] + costs["hybrid[light]"] <= costs["hybrid"]
        assert costs["hybrid[heavy]"] > 0
        assert costs["hybrid[light]"] > 0


class TestUniformEnvelope:
    def test_hybrid_infeasible_on_uniform_stats(self):
        query, database = uniform_triangle()
        decision = dispatch(query, database)
        assert decision.costs["hybrid"] == float("inf")
        assert decision.strategy != "hybrid"

    def test_plan_reports_not_skewed(self):
        query, database = uniform_triangle()
        plan = plan_hybrid(query, database)
        assert not plan["skewed"]
        assert plan["max_degree"] <= plan["threshold"]

    def test_zipf_plan_reports_skewed(self):
        query, database = zipf_triangle_instance(400, skew=1.5, seed=0)
        plan = plan_hybrid(query, database)
        assert plan["skewed"]
        assert plan["heavy_strategy"] == "yannakakis"  # path residual
        assert plan["light_strategy"] == "generic"
