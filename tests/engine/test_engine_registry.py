"""Tests for the version-checked index registry."""

from repro.engine.registry import IndexRegistry
from repro.relational.database import Database
from repro.relational.relation import Relation


def make_database():
    return Database([
        Relation("R", ("A", "B"), [(1, 2), (2, 3), (3, 1)]),
        Relation("S", ("B", "C"), [(2, 3), (3, 1)]),
    ])


class TestTrieReuse:
    def test_same_layout_returns_same_object(self):
        registry = IndexRegistry(make_database())
        first = registry.trie("R", ("A", "B"))
        second = registry.trie("R", ("A", "B"))
        assert first is second
        assert registry.builds == 1
        assert registry.reuses == 1

    def test_different_layouts_build_separately(self):
        registry = IndexRegistry(make_database())
        ab = registry.trie("R", ("A", "B"))
        ba = registry.trie("R", ("B", "A"))
        assert ab is not ba
        assert registry.builds == 2
        assert ab.values(()) == [1, 2, 3]
        assert ba.values(()) == [1, 2, 3]  # B-values of R

    def test_hash_index_reuse(self):
        registry = IndexRegistry(make_database())
        first = registry.hash_index("R", ("A",))
        second = registry.hash_index("R", ("A",))
        assert first is second
        assert registry.builds == 1


class TestInvalidation:
    def test_version_bump_rebuilds(self):
        database = make_database()
        registry = IndexRegistry(database)
        stale = registry.trie("R", ("A", "B"))
        database.replace(Relation("R", ("A", "B"), [(7, 8)]))
        fresh = registry.trie("R", ("A", "B"))
        assert fresh is not stale
        assert fresh.values(()) == [7]
        assert registry.builds == 2

    def test_is_warm_tracks_versions(self):
        database = make_database()
        registry = IndexRegistry(database)
        assert not registry.is_warm("R", ("A", "B"))
        registry.trie("R", ("A", "B"))
        assert registry.is_warm("R", ("A", "B"))
        database.replace(Relation("R", ("A", "B"), [(7, 8)]))
        assert not registry.is_warm("R", ("A", "B"))

    def test_invalidate_single_relation(self):
        registry = IndexRegistry(make_database())
        registry.trie("R", ("A", "B"))
        registry.trie("S", ("B", "C"))
        dropped = registry.invalidate("R")
        assert dropped == 1
        assert len(registry) == 1
        assert registry.is_warm("S", ("B", "C"))

    def test_invalidate_all(self):
        registry = IndexRegistry(make_database())
        registry.trie("R", ("A", "B"))
        registry.hash_index("S", ("B",))
        assert registry.invalidate() == 2
        assert len(registry) == 0

    def test_warm_layouts_excludes_stale(self):
        database = make_database()
        registry = IndexRegistry(database)
        registry.trie("R", ("A", "B"))
        registry.trie("S", ("B", "C"))
        database.replace(Relation("S", ("B", "C"), [(9, 9)]))
        assert registry.warm_layouts() == [("R", ("A", "B"))]


class TestDatabaseVersions:
    def test_add_sets_version(self):
        database = Database()
        assert database.version("R") == 0
        database.add(Relation("R", ("A",), [(1,)]))
        assert database.version("R") == 1

    def test_replace_bumps_version(self):
        database = make_database()
        v0 = database.version("R")
        database.replace(Relation("R", ("A", "B"), [(5, 6)]))
        assert database.version("R") == v0 + 1
        assert database.version("S") == 1
