"""Empty-relation envelopes: zero, not ``log(0)`` crashes or pessimism.

Satellite regression of the component-factorization PR: an empty relation
(or one a selection filters out entirely) forces an empty join, so the
dispatcher's envelope must be exactly zero — previously a zero-bound
degree constraint reached the LP layer as a ``log2 0 = -inf`` coefficient
and scipy's ``linprog`` raised ``ValueError``.  The cyclic-constraint
fallback (``dc.is_acyclic()`` false) is also pinned to still return
``min(AGM, degree-aware bound of the filtered instance)``.
"""

import math

from repro.bounds.agm import agm_bound
from repro.bounds.degree_aware import output_size_bound
from repro.bounds.modular import modular_bound, modular_bound_dual
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.degree import (
    DegreeConstraint,
    DegreeConstraintSet,
    constraints_from_database,
)
from repro.engine import Engine
from repro.engine.cost import dispatch, selection_envelope
from repro.query.builder import Query
from repro.relational.database import Database
from repro.relational.relation import Relation


def zero_bound_dc(extra=()):  # acyclic: a single one-directional constraint
    return DegreeConstraintSet(("A", "B"), [
        DegreeConstraint.cardinality(("A", "B"), 0, guard="R"),
        DegreeConstraint(x=frozenset({"A"}), y=frozenset({"A", "B"}),
                         bound=0, guard="R"),
        *extra,
    ])


class TestZeroBoundConstraints:
    def test_modular_bound_is_provably_empty_not_a_crash(self):
        result = modular_bound(zero_bound_dc())
        assert result.log2_bound == -math.inf
        assert result.bound == 0.0

    def test_modular_dual_matches(self):
        result = modular_bound_dual(zero_bound_dc())
        assert result.log2_bound == -math.inf

    def test_polymatroid_bound_is_provably_empty_not_a_crash(self):
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), 0, guard="R"),
            DegreeConstraint(x=frozenset({"A"}), y=frozenset({"A", "B"}),
                             bound=2, guard="R"),
            DegreeConstraint(x=frozenset({"B"}), y=frozenset({"A", "B"}),
                             bound=2, guard="R"),
            DegreeConstraint.cardinality(("B", "C"), 4, guard="S"),
            DegreeConstraint.cardinality(("A", "C"), 4, guard="T"),
        ])
        assert not dc.is_acyclic()
        result = polymatroid_bound(dc)
        assert result.log2_bound == -math.inf
        assert result.bound == 0.0

    def test_output_size_bound_dispatch_handles_empties(self):
        assert output_size_bound(None, None, dc=zero_bound_dc()).bound == 0.0


def chain_query():
    return Query.coerce("Q(A,B,C) :- R(A,B), S(B,C), A == 99")


def chain_database(r_rows):
    return Database([
        Relation("R", ("a", "b"), r_rows),
        Relation("S", ("b", "c"), [(b, c) for b in range(4)
                                   for c in range(3)]),
    ])


class TestSelectionEnvelope:
    def test_fully_filtered_scan_gives_zero_envelope(self):
        spec = chain_query()
        database = chain_database([(1, 2), (2, 3)])  # A == 99 empties R
        agm = agm_bound(spec.core, database)
        sizes, envelope = selection_envelope(spec.core, database,
                                             spec.all_selections, agm)
        assert sizes[0] == 0
        assert envelope == 0.0

    def test_empty_base_relation_gives_zero_envelope(self):
        spec = Query.coerce("Q(A,B,C) :- R(A,B), S(B,C)")
        database = chain_database([])
        agm = agm_bound(spec.core, database)
        sizes, envelope = selection_envelope(spec.core, database, (), agm)
        assert envelope == 0.0

    def test_dispatch_and_execute_survive_empty_scans(self):
        database = chain_database([(1, 2)])
        spec = chain_query()
        decision = dispatch(spec.core, database,
                            selections=spec.all_selections)
        assert all(math.isfinite(c) or c == math.inf
                   for c in decision.costs.values())
        engine = Engine(database=database)
        assert len(engine.execute(str(spec))) == 0

    def test_cyclic_fallback_still_returns_min_of_agm_and_filtered(self):
        # Binary atoms derive both conditioning directions, so the
        # data-derived constraint graph is cyclic and the envelope falls
        # back to the filtered instance's AGM — which must still be
        # min'd against the unfiltered bound and respect the filter.
        spec = Query.coerce("Q(A,B,C) :- R(A,B), S(B,C), A == 0")
        database = Database([
            Relation("R", ("a", "b"),
                     [(0, b) for b in range(2)]
                     + [(a, b) for a in range(1, 40) for b in range(4)]),
            Relation("S", ("b", "c"), [(b, c) for b in range(4)
                                       for c in range(5)]),
        ])
        dc = constraints_from_database(spec.core, database, max_key_size=1)
        assert not dc.is_acyclic()
        agm = agm_bound(spec.core, database)
        _sizes, envelope = selection_envelope(spec.core, database,
                                              spec.all_selections, agm)
        assert 0.0 < envelope <= agm.bound
        # The filtered R has 2 tuples; the filtered AGM is far below the
        # unfiltered bound, so the min actually bit.
        assert envelope < agm.bound / 4
