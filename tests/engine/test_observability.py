"""Integration tests: the engine's tracer spans and metrics registry."""

import pytest

from repro.engine import Engine
from repro.errors import QueryError
from repro.obs import MetricsRegistry, Tracer, parse_exposition
from repro.relational.database import Database
from repro.relational.relation import Relation


@pytest.fixture
def traced(small_triangle_instance):
    query, database, _expected = small_triangle_instance
    tracer = Tracer()
    return Engine(database, tracer=tracer, collect_operations=True), \
        tracer, query


class TestTracing:
    def test_cold_query_emits_full_span_taxonomy(self, traced):
        engine, tracer, query = traced
        engine.execute(query)
        names = {span.name for span in tracer}
        assert names == {"query", "parse", "canonicalize",
                         "plan_cache.lookup", "dispatch.price",
                         "index.resolve", "execute", "deliver"}

    def test_stage_spans_nest_under_the_query_span(self, traced):
        engine, tracer, query = traced
        engine.execute(query)
        root = tracer.find("query")[0]
        assert root.parent_id is None
        children = {span.name for span in tracer.children(root)}
        assert "parse" in children and "deliver" in children

    def test_query_span_carries_outcome_attributes(self, traced):
        engine, tracer, query = traced
        engine.execute(query)
        root = tracer.find("query")[0]
        assert root.attributes["rows"] == 4
        assert root.attributes["plan_cache"] == "miss"
        assert root.attributes["strategy"]

    def test_execute_span_reports_operations(self, traced):
        engine, tracer, query = traced
        engine.execute(query)
        execute = tracer.find("execute")[0]
        assert execute.attributes["rows"] == 4
        assert execute.attributes["operations"]["total"] > 0

    def test_cache_hit_query_skips_pricing_and_execution(self, traced):
        engine, tracer, query = traced
        engine.execute(query)
        tracer.reset()
        engine.execute(query)  # result-cache hit
        names = [span.name for span in tracer]
        assert "dispatch.price" not in names
        assert "execute" not in names
        deliver = tracer.find("deliver")[0]
        assert deliver.attributes["result_cache"] == "hit"

    def test_untraced_engine_uses_null_tracer(self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        engine = Engine(database)
        assert not engine.tracer.enabled
        engine.execute(query)
        assert len(engine.tracer) == 0


class TestMetrics:
    def test_query_and_cache_counters(self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        engine = Engine(database)
        engine.execute(query)
        engine.execute(query)
        snapshot = engine.metrics_snapshot()
        assert snapshot["repro_queries_total"] == 2
        assert snapshot['repro_plan_cache_lookups_total{outcome="miss"}'] == 1
        assert snapshot['repro_result_cache_lookups_total{outcome="hit"}'] == 1
        assert snapshot['repro_index_events_total{event="build"}'] > 0

    def test_dispatch_and_operation_counters(self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        engine = Engine(database, collect_operations=True,
                        cache_results=False)
        engine.execute(query, mode="generic")
        snapshot = engine.metrics_snapshot()
        assert snapshot['repro_dispatch_total{strategy="generic"}'] == 1
        assert snapshot['repro_operations_total{kind="search_nodes"}'] > 0
        # Per-variable attribution sums back to the plain total.
        per_variable = sum(
            value for name, value in snapshot.items()
            if name.startswith("repro_search_nodes_total"))
        assert per_variable == \
            snapshot['repro_operations_total{kind="search_nodes"}']

    def test_gauges_reflect_cache_occupancy(self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        engine = Engine(database)
        engine.execute(query)
        snapshot = engine.metrics_snapshot()
        assert snapshot["repro_plan_cache_entries"] == 1
        assert snapshot["repro_result_cache_entries"] == 1
        assert snapshot["repro_registry_indexes"] > 0

    def test_invalidate_event_on_replace(self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        engine = Engine(database)
        engine.execute(query)
        engine.replace_relation(
            Relation("R", ("A", "B"), [(1, 1)]))
        snapshot = engine.metrics_snapshot()
        assert snapshot['repro_index_events_total{event="invalidate"}'] > 0

    def test_anyk_delay_histograms_populate(self):
        edges = [(i, j) for i in range(6) for j in range(6)]
        database = Database([Relation("R", ("A", "B"), edges),
                             Relation("S", ("B", "C"), edges)])
        engine = Engine(database)
        q = "Q(A,B,C) :- R(A,B), S(B,C) ORDER BY B DESC, A LIMIT 9"
        rows = list(engine.stream(q, ranked_mode="anyk"))
        assert len(rows) == 9
        snapshot = engine.metrics_snapshot()
        first = engine.metrics.get("repro_anyk_first_row_seconds")
        delay = engine.metrics.get("repro_anyk_delay_seconds")
        assert first.snapshot()["count"] == 1
        assert delay.snapshot()["count"] == 8
        assert snapshot["repro_anyk_delay_seconds"]["count"] == 8

    def test_exposition_parses_back(self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        engine = Engine(database)
        engine.execute(query)
        parsed = parse_exposition(engine.metrics_exposition())
        assert parsed["repro_queries_total"][""] == 1
        assert "repro_execution_seconds_bucket" in parsed

    def test_shared_registry_across_engines(self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        registry = MetricsRegistry()
        first = Engine(database, metrics=registry)
        second = Engine(database, metrics=registry)
        first.execute(query)
        second.execute(query)
        assert registry.get("repro_queries_total").value() == 2

    def test_metrics_disabled_raises_on_access(
            self, small_triangle_instance):
        query, database, _ = small_triangle_instance
        engine = Engine(database, metrics=False)
        engine.execute(query)
        assert engine.metrics is None
        with pytest.raises(QueryError):
            engine.metrics_snapshot()
        with pytest.raises(QueryError):
            engine.metrics_exposition()
