"""Engine behaviour on the rich query surface.

Selections pushed below the join, early-deduplicating projection, semiring
aggregates, ordered/top-k results, and the cache semantics of all of the
above.
"""

import pytest

from repro.datagen.graphs import erdos_renyi_graph
from repro.datagen.worstcase import triangle_from_graph, triangle_skew_instance
from repro.engine import Engine
from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.joins.naive import nested_loop_join
from repro.query.builder import Q, Query
from repro.query.semiring import count, max_, min_, sum_
from repro.relational.relation import Relation

ACCEPTANCE = "Q(A) :- R(A,B), S(B,5), A < B"


def triangle_engine(n=30, m=110, seed=5):
    _, database = triangle_from_graph(erdos_renyi_graph(n, m, seed=seed))
    return Engine(database=database)


def reference_rows(query, database):
    """Brute-force evaluation of a rich query (no engine involved)."""
    spec = Query.coerce(query)
    core = spec.core
    full = nested_loop_join(core, database)
    variables = core.variables
    rows = [
        t for t in full.tuples
        if all(sel.evaluate(dict(zip(variables, t)))
               for sel in spec.all_selections)
    ]
    if spec.aggregates:
        from repro.query.semiring import fold_aggregates

        return sorted(fold_aggregates(rows, variables, spec.head_vars,
                                      spec.aggregates))
    positions = [variables.index(h) for h in spec.head_vars]
    return sorted({tuple(t[p] for p in positions) for t in rows})


class TestAcceptanceQuery:
    def test_parses_plans_and_executes_identically_everywhere(self):
        engine = triangle_engine()
        expected = reference_rows(ACCEPTANCE, engine.database)
        assert expected  # the instance must actually exercise the filters
        for mode in ("naive", "generic", "leapfrog", "binary", "auto"):
            result = engine.execute(ACCEPTANCE, mode=mode)
            assert result.attributes == ("A",)
            assert sorted(result.tuples) == expected, mode

    def test_explain_shows_selection_pushed_below_the_join(self):
        engine = triangle_engine()
        explanation = engine.explain(ACCEPTANCE, mode="generic")
        rendered = explanation.render()
        assert "pushed below join" in rendered
        assert explanation.pushed_selections
        assert not explanation.residual_selections
        # The constant-pinned variable is bound at the very top of the
        # recursion — strictly below (before) any joining happens.
        assert any("depth 0" in line for line in explanation.pushed_selections)

    def test_isomorphic_projected_queries_share_one_plan_entry(self):
        engine = triangle_engine()
        engine.execute(ACCEPTANCE)
        engine.execute("P(X) :- R(X,Y), S(Y,5), X < Y")
        assert engine.stats.plan_misses == 1
        assert engine.stats.plan_hits == 1

    def test_different_constants_do_not_share_results(self):
        engine = triangle_engine()
        five = engine.execute("Q(A) :- R(A,B), S(B,5)")
        six = engine.execute("Q(A) :- R(A,B), S(B,6)")
        assert engine.stats.result_hits == 0
        assert sorted(five.tuples) == reference_rows(
            "Q(A) :- R(A,B), S(B,5)", engine.database)
        assert sorted(six.tuples) == reference_rows(
            "Q(A) :- R(A,B), S(B,6)", engine.database)


class TestPushdownEfficiency:
    def test_constant_selection_prunes_the_search(self):
        query, database = triangle_skew_instance(300)
        engine = Engine(database=database, cache_results=False)
        unselective = OperationCounter()
        engine.execute("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)",
                       mode="generic", counter=unselective)
        selective = OperationCounter()
        engine.execute("Q(A,B,C) :- R(A,B), S(B,C), T(A,C), A == 1",
                       mode="generic", counter=selective)
        assert selective.search_nodes < unselective.search_nodes / 2

    def test_projection_deduplicates_early(self):
        # Q(A) over the skewed triangle: each A value has many (B, C)
        # witnesses; the existential tail must stop at the first one.
        query, database = triangle_skew_instance(300)
        engine = Engine(database=database, cache_results=False)
        full = OperationCounter()
        engine.execute("Q(A,B,C) :- R(A,B), S(B,C), T(A,C)",
                       mode="generic", counter=full)
        projected = OperationCounter()
        result = engine.execute("Q(A) :- R(A,B), S(B,C), T(A,C)",
                                mode="generic", counter=projected)
        assert projected.search_nodes < full.search_nodes
        expected = nested_loop_join(query, database).project(("A",))
        assert result == expected


class TestAggregates:
    @pytest.mark.parametrize("mode", ["naive", "generic", "leapfrog",
                                      "binary", "auto"])
    def test_group_by_aggregates_match_brute_force(self, mode):
        engine = triangle_engine()
        text = ("Q(A, COUNT(*), SUM(C) AS total, MIN(B), MAX(C)) :- "
                "R(A,B), S(B,C), T(A,C)")
        result = engine.execute(text, mode=mode)
        assert result.attributes == ("A", "count", "total", "min_B", "max_C")
        assert sorted(result.tuples) == reference_rows(text, engine.database)

    def test_builder_aggregates(self):
        engine = triangle_engine()
        q = (Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
             .select("A", count(), sum_("C", "total"), min_("B"), max_("C"))
             .group_by("A"))
        text = ("Q(A, COUNT(*), SUM(C) AS total, MIN(B), MAX(C)) :- "
                "R(A,B), S(B,C), T(A,C)")
        assert sorted(engine.execute(q).tuples) == reference_rows(
            text, engine.database)

    def test_group_free_count_over_empty_join_is_zero(self):
        engine = Engine(relations=[Relation("R", ("A", "B"), [])])
        result = engine.execute("Q(COUNT(*)) :- R(A,B)")
        assert sorted(result.tuples) == [(0,)]

    def test_aggregate_result_is_cached_and_invalidated(self):
        engine = triangle_engine()
        text = "Q(A, COUNT(*)) :- R(A,B), S(B,C), T(A,C)"
        first = engine.execute(text)
        second = engine.execute(text)
        assert engine.stats.result_hits == 1
        assert second == first
        engine.insert("R", [(10**6, 10**6 + 1)])
        engine.execute(text)
        assert engine.stats.result_hits == 1  # no stale serve after mutation


class TestOrderAndLimit:
    def test_order_by_streams_sorted_rows(self):
        engine = triangle_engine()
        rows = list(engine.stream(
            Q.from_("R", "A", "B").from_("S", "B", "C")
            .from_("T", "A", "C").order_by("-A", "B")))
        assert rows
        assert rows == sorted(rows, key=lambda r: (-r[0],) + r[1:])

    def test_top_k_is_the_prefix_of_the_full_order(self):
        engine = triangle_engine()
        base = (Q.from_("R", "A", "B").from_("S", "B", "C")
                .from_("T", "A", "C").select("A", "B").order_by("-B", "A"))
        full = list(engine.stream(base))
        top = engine.execute(
            Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
            .select("A", "B").order_by("-B", "A").limit(4))
        assert sorted(top.tuples) == sorted(full[:4])

    def test_query_limit_combines_with_call_limit(self):
        engine = triangle_engine()
        q = (Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
             .limit(5))
        assert len(engine.execute(q, limit=3)) == 3
        assert len(engine.execute(q, limit=9)) == 5

    def test_query_level_top_k_is_result_cached(self):
        # A LIMIT carried by the query is part of the canonical form, so
        # repeated top-k queries are served from the result cache; only a
        # per-call limit (absent from the key) bypasses it.
        engine = triangle_engine()
        q = (Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
             .select("A", "B").order_by("-B").limit(4))
        first = engine.execute(q)
        second = engine.execute(q)
        assert second is first
        assert engine.stats.result_hits == 1
        engine.execute(q, limit=2)  # per-call limit: never cache-served
        assert engine.stats.result_hits == 1

    def test_ordered_aggregates(self):
        engine = triangle_engine()
        q = (Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
             .select("A", count()).group_by("A").order_by("-count").limit(3))
        rows = list(engine.stream(q))
        reference = reference_rows(
            "Q(A, COUNT(*)) :- R(A,B), S(B,C), T(A,C)", engine.database)
        expected = sorted(reference, key=lambda r: (-r[1], r))[:3]
        assert rows == expected


class TestExplainAndStats:
    def test_explain_reports_output_and_session_stats(self):
        engine = triangle_engine()
        engine.execute(ACCEPTANCE)
        explanation = engine.explain(ACCEPTANCE)
        rendered = explanation.render()
        assert "output:         (A)" in rendered
        assert "session stats:" in rendered
        assert explanation.session_stats["plan_hits"] >= 1
        assert explanation.session_stats["result_misses"] == 1

    def test_explain_counts_plan_and_index_hits(self):
        engine = triangle_engine()
        engine.execute(ACCEPTANCE, mode="generic")
        engine.execute(ACCEPTANCE, mode="generic", limit=1)  # reruns executor
        explanation = engine.explain(ACCEPTANCE, mode="generic")
        stats = explanation.session_stats
        assert stats["plan_hits"] == 2
        assert stats["index_builds"] >= 1
        assert stats["index_reuses"] >= 1
        assert "reused" in engine.stats.summary()

    def test_explain_renders_order_limit_and_aggregates(self):
        engine = triangle_engine()
        q = (Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
             .select("A", count()).group_by("A").order_by("-count").limit(3))
        rendered = engine.explain(q).render()
        assert "aggregates:     COUNT(*) AS count" in rendered
        assert "ORDER BY count DESC" in rendered
        assert "LIMIT 3" in rendered

    def test_cross_atom_selection_pushed_into_pairwise_joins(self):
        engine = triangle_engine()
        # A != 17 lives in a single atom: filtered into that scan.
        explanation = engine.explain(
            "Q(A,B,C) :- R(A,B), S(B,C), A != 17", mode="binary")
        assert explanation.residual_selections == ()
        assert any("filtered into the scan" in entry
                   for entry in explanation.pushed_selections)
        # A < C spans two atoms: applied during the pairwise joins, at the
        # first join binding both sides — never post-join.
        path = engine.explain("Q(A,C) :- R(A,B), S(B,C), A < C", mode="binary")
        assert path.residual_selections == ()
        assert any("during the pairwise joins" in entry
                   for entry in path.pushed_selections)
        wcoj = engine.explain("Q(A,C) :- R(A,B), S(B,C), A < C", mode="generic")
        assert not wcoj.residual_selections  # WCOJ prunes mid-recursion

    def test_forced_yannakakis_on_selected_acyclic_query(self):
        engine = triangle_engine()
        result = engine.execute("Q(A,C) :- R(A,B), S(B,C), A < C",
                                mode="yannakakis")
        assert sorted(result.tuples) == reference_rows(
            "Q(A,C) :- R(A,B), S(B,C), A < C", engine.database)

    def test_unsatisfiable_constant_yields_empty_not_error(self):
        engine = triangle_engine()
        result = engine.execute("Q(A) :- R(A,B), S(B, 999999)")
        assert result.is_empty()

    def test_mixed_type_constant_never_matches(self):
        engine = triangle_engine()
        result = engine.execute("Q(A) :- R(A,B), S(B, 'text')")
        assert result.is_empty()


class TestValidation:
    def test_unknown_selection_variable_raises(self):
        engine = triangle_engine()
        with pytest.raises(QueryError):
            engine.execute("Q(A) :- R(A,B), A < Z")

    def test_builder_accepted_directly(self):
        engine = triangle_engine()
        builder = Q.from_("R", "A", "B").select("A")
        result = engine.execute(builder)
        assert result.attributes == ("A",)
