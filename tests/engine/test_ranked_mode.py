"""The any-k ranked execution mode through the engine surface.

Covers the dispatcher's ranked-mode pricing and resolution, the ranked
variable order (sort-key prefix + width-minimizing tail), cross-engine
agreement of the any-k prefix with drain-and-heap on randomized acyclic
and cyclic queries, the node-count separation for small k (the delay
shape any-k exists for), ``explain()``'s ranked-mode report, plan-cache
behaviour across modes, the per-call-limit / query-ORDER-BY interaction
(ordering must never be skipped by a truncating limit), and the error
surface of forced modes.
"""

import random

import pytest

from repro.engine import Engine
from repro.engine.cost import dispatch
from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.builder import Q, sort_rows
from repro.query.semiring import count
from repro.query.variable_order import ranked_order
from repro.relational.database import Database
from repro.relational.relation import Relation

ALL_MODES = ("generic", "leapfrog", "yannakakis", "binary", "naive")
ANYK_MODES = ("generic", "leapfrog", "yannakakis")


def random_chain_engine(seed: int, n: int = 20, rows: int = 90) -> Engine:
    rng = random.Random(seed)
    r = {(rng.randrange(n), rng.randrange(n)) for _ in range(rows)}
    s = {(rng.randrange(n), rng.randrange(n)) for _ in range(rows)}
    return Engine(relations=[Relation("R", ("a", "b"), r),
                             Relation("S", ("b", "c"), s)],
                  cache_results=False)


def random_triangle_engine(seed: int, n: int = 15, rows: int = 70) -> Engine:
    rng = random.Random(seed)
    rel = lambda name, cols: Relation(name, cols, {
        (rng.randrange(n), rng.randrange(n)) for _ in range(rows)
    })
    return Engine(relations=[rel("R", ("a", "b")), rel("S", ("b", "c")),
                             rel("T", ("a", "c"))],
                  cache_results=False)


def skewed_engine(groups: int = 60, hubs: int = 40,
                  hub_fanout: int = 250) -> Engine:
    """Every A sees every B; hub B=0 carries almost all of S's fan-out.

    A full-head ranked query on this instance separates the two ranked
    modes on search nodes: drain enumerates every (B, A) join prefix
    (groups × hubs internal nodes) before the heap sees a row, while
    any-k pays one saturating existence check per candidate sort key
    plus the popped tie classes.
    """
    r = Relation("R", ("a", "b"),
                 [(a, b) for a in range(groups) for b in range(hubs)])
    s_rows = [(0, c) for c in range(hub_fanout)]
    s_rows += [(b, c) for b in range(1, hubs) for c in range(2)]
    s = Relation("S", ("b", "c"), s_rows)
    return Engine(relations=[r, s], cache_results=False)


class TestRankedPlanner:
    def test_keys_prefix_then_head_then_width_minimizing_tail(self):
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        order, width = ranked_order(q, ["B"], head=("A", "B"))
        assert order[0] == "B"
        assert set(order[:2]) == {"A", "B"}
        assert width == 1.0

    def test_keys_follow_order_by_sequence_not_degree(self):
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        order, _w = ranked_order(q, ["A", "B"], head=("A", "B"))
        assert order[:2] == ("A", "B")
        order, _w = ranked_order(q, ["B", "A"], head=("A", "B"))
        assert order[:2] == ("B", "A")

    def test_pinned_variables_precede_keys(self):
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        order, _w = ranked_order(q, ["A"], fixed=("C",), head=("A",))
        assert order[0] == "C" and order[1] == "A"


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_acyclic_full_head(self, seed):
        engine = random_chain_engine(seed)
        q = "Q(A,B,C) :- R(A,B), S(B,C) ORDER BY B DESC, A LIMIT 9"
        expected = list(engine.stream(q, mode="naive", ranked_mode="drain"))
        for mode in ALL_MODES:
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="drain")) == expected
        for mode in ANYK_MODES:
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="anyk")) == expected

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_acyclic_projected_head(self, seed):
        engine = random_chain_engine(seed)
        q = "Q(A, C) :- R(A,B), S(B,C) ORDER BY C, A DESC LIMIT 8"
        expected = list(engine.stream(q, mode="naive", ranked_mode="drain"))
        for mode in ANYK_MODES:
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="anyk")) == expected

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cyclic_triangle(self, seed):
        engine = random_triangle_engine(seed)
        q = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C) ORDER BY C DESC, B LIMIT 6"
        expected = list(engine.stream(q, mode="naive", ranked_mode="drain"))
        for mode in ("generic", "leapfrog"):
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="anyk")) == expected
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="drain")) == expected

    @pytest.mark.parametrize("seed", [0, 1])
    def test_with_selections_and_constants(self, seed):
        engine = random_chain_engine(seed)
        q = "Q(A, B) :- R(A,B), S(B,C), A < C, B != 3 ORDER BY A DESC LIMIT 5"
        expected = list(engine.stream(q, mode="naive", ranked_mode="drain"))
        for mode in ANYK_MODES:
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="anyk")) == expected

    def test_full_enumeration_without_limit_is_the_whole_sorted_result(self):
        engine = random_chain_engine(7)
        q = "Q(A,B,C) :- R(A,B), S(B,C) ORDER BY A, B DESC, C"
        expected = list(engine.stream(q, ranked_mode="drain"))
        for mode in ANYK_MODES:
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="anyk")) == expected

    def test_string_sort_keys(self):
        names = Relation("N", ("a", "name"),
                         [(1, "zoe"), (2, "amy"), (3, "bob"), (4, "amy")])
        edges = Relation("E", ("a", "b"), [(1, 2), (2, 3), (3, 4), (4, 1)])
        engine = Engine(relations=[names, edges], cache_results=False)
        q = "Q(X, B) :- N(A, X), E(A, B) ORDER BY X, B DESC LIMIT 3"
        expected = list(engine.stream(q, ranked_mode="drain"))
        for mode in ANYK_MODES:
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="anyk")) == expected


class TestDelayShape:
    # Full-head queries: with a projected head, drain already collapses
    # the tail through the existential eliminator, so the node-count
    # separation any-k buys shows on the full enumeration — the "top-k
    # of the join by a score column" workload.
    QUERY = "Q(A, B, C) :- R(A,B), S(B,C) ORDER BY A"

    def test_anyk_touches_far_fewer_nodes_for_k1(self):
        engine = skewed_engine()
        anyk, drain = OperationCounter(), OperationCounter()
        r1 = engine.execute(self.QUERY + " LIMIT 1", mode="generic",
                            ranked_mode="anyk", counter=anyk)
        r2 = engine.execute(self.QUERY + " LIMIT 1", mode="generic",
                            ranked_mode="drain", counter=drain)
        assert sorted(r1.tuples) == sorted(r2.tuples)
        assert drain.search_nodes >= 10 * anyk.search_nodes

    def test_node_count_grows_with_k_not_with_the_join(self):
        engine = skewed_engine()
        counters = {}
        for k in (1, 10):
            counter = OperationCounter()
            rows = []
            for row in engine.stream(self.QUERY, mode="generic",
                                     ranked_mode="anyk", counter=counter):
                rows.append(row)
                if len(rows) == k:
                    break
            counters[k] = counter.search_nodes
        drain = OperationCounter()
        list(engine.stream(self.QUERY, mode="generic", ranked_mode="drain",
                           counter=drain))
        assert counters[1] <= counters[10] < drain.search_nodes

    def test_abandoning_the_anyk_stream_abandons_the_frontier(self):
        engine = skewed_engine()
        counter = OperationCounter()
        stream = engine.stream(self.QUERY, mode="generic",
                               ranked_mode="anyk", counter=counter)
        next(stream)
        stream.close()
        drain = OperationCounter()
        list(engine.stream(self.QUERY, mode="generic", ranked_mode="drain",
                           counter=drain))
        assert counter.search_nodes < drain.search_nodes / 10


class TestLimitOrderByInteraction:
    """Per-call ``limit`` + query-carried ORDER BY: ordering always wins.

    The min-wins merge of the per-call limit with the query's own LIMIT
    must truncate the *ordered* stream — never the raw join enumeration —
    in every ranked mode and on every API (stream/execute/execute_many).
    """

    QUERY = "Q(A, B) :- R(A,B), S(B,C) ORDER BY B DESC, A"

    def expected_prefix(self, engine, k):
        full = list(engine.stream(self.QUERY, mode="naive",
                                  ranked_mode="drain"))
        return full[:k]

    @pytest.mark.parametrize("ranked_mode", ["auto", "anyk", "drain"])
    def test_stream_per_call_limit_truncates_after_ordering(self, ranked_mode):
        engine = random_chain_engine(11)
        want = self.expected_prefix(engine, 4)
        got = list(engine.stream(self.QUERY, limit=4,
                                 ranked_mode=ranked_mode))
        assert got == want

    @pytest.mark.parametrize("ranked_mode", ["auto", "anyk", "drain"])
    def test_execute_per_call_limit_returns_the_ranked_prefix(self,
                                                              ranked_mode):
        engine = random_chain_engine(12)
        want = set(self.expected_prefix(engine, 5))
        got = engine.execute(self.QUERY, limit=5, ranked_mode=ranked_mode)
        assert set(got.tuples) == want

    def test_min_wins_against_the_query_limit(self):
        engine = random_chain_engine(13)
        carried = self.QUERY + " LIMIT 6"
        want = self.expected_prefix(engine, 6)
        # Per-call smaller: truncates the ordered stream further.
        assert list(engine.stream(carried, limit=2)) == want[:2]
        # Per-call larger: the query's own LIMIT wins.
        assert list(engine.stream(carried, limit=50)) == want
        for mode in ANYK_MODES:
            assert list(engine.stream(carried, limit=2, mode=mode,
                                      ranked_mode="anyk")) == want[:2]

    def test_execute_many_applies_the_merge_per_query(self):
        engine = random_chain_engine(14)
        carried = self.QUERY + " LIMIT 6"
        want = self.expected_prefix(engine, 6)
        results = engine.execute_many([carried, self.QUERY], limit=3)
        assert set(results[0].tuples) == set(want[:3])
        assert set(results[1].tuples) == set(want[:3])

    def test_warm_result_cache_does_not_leak_into_limited_calls(self):
        engine = Engine(relations=[
            Relation("R", ("a", "b"), [(i, 10 - i) for i in range(10)]),
            Relation("S", ("b", "c"), [(10 - i, i) for i in range(10)]),
        ])
        carried = self.QUERY + " LIMIT 6"
        full = engine.execute(carried)  # populates the result cache
        assert len(full) == 6
        want = self.expected_prefix(engine, 2)
        got = engine.execute(carried, limit=2)
        assert set(got.tuples) == set(want)

    def test_limit_zero_is_empty_not_unordered(self):
        engine = random_chain_engine(15)
        assert list(engine.stream(self.QUERY, limit=0)) == []
        assert len(engine.execute(self.QUERY, limit=0)) == 0


class TestDispatchAndExplain:
    def test_auto_resolves_anyk_under_a_small_limit(self):
        engine = skewed_engine()
        exp = engine.explain("Q(A,B) :- R(A,B), S(B,C) ORDER BY A LIMIT 1")
        assert exp.ranked_mode == "anyk"
        assert exp.strategy in ANYK_MODES
        assert exp.costs["ranked[anyk]"] < exp.costs["ranked[drain]"]
        assert "ranked mode:" in exp.render()

    def test_auto_resolves_drain_without_a_limit(self):
        engine = random_chain_engine(20)
        exp = engine.explain("Q(A,B) :- R(A,B), S(B,C) ORDER BY A")
        assert exp.ranked_mode == "drain"

    def test_unordered_queries_report_no_ranked_mode(self):
        engine = random_chain_engine(21)
        exp = engine.explain("Q(A,B) :- R(A,B), S(B,C)")
        assert exp.ranked_mode is None
        assert "ranked mode" not in exp.render()

    def test_forced_anyk_is_reported(self):
        engine = random_chain_engine(22)
        exp = engine.explain("Q(A,B) :- R(A,B), S(B,C) ORDER BY A",
                             ranked_mode="anyk")
        assert exp.ranked_mode == "anyk"

    def test_ordered_aggregate_queries_resolve_to_drain(self):
        engine = random_chain_engine(23)
        q = (Q.from_("R", "A", "B").from_("S", "B", "C")
              .select("A", count()).group_by("A")
              .order_by("-count").limit(3))
        exp = engine.explain(q)
        assert exp.ranked_mode == "drain"
        result = engine.execute(q)
        assert len(result) <= 3

    def test_dispatch_decision_carries_the_ranked_mode(self):
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        db = Database([
            Relation("R", ("a", "b"), [(1, 2)]),
            Relation("S", ("b", "c"), [(2, 3)]),
        ])
        decision = dispatch(q, db, order_by=(("A", False),), limit=1)
        assert decision.ranked_mode in ("anyk", "drain")
        decision = dispatch(q, db)
        assert decision.ranked_mode is None


class TestPlanCache:
    def test_ranked_mode_is_a_plan_axis(self):
        engine = random_chain_engine(30)
        q = "Q(A,B) :- R(A,B), S(B,C) ORDER BY A LIMIT 3"
        anyk = list(engine.stream(q, ranked_mode="anyk"))
        drain = list(engine.stream(q, ranked_mode="drain"))
        assert anyk == drain
        assert engine.stats.plan_misses == 2  # one plan per mode

    def test_isomorphic_ordered_queries_share_a_plan(self):
        engine = random_chain_engine(31)
        first = "Q(A,B) :- R(A,B), S(B,C) ORDER BY A LIMIT 3"
        second = "Q(X,Y) :- R(X,Y), S(Y,Z) ORDER BY X LIMIT 3"
        assert (list(engine.stream(first, ranked_mode="anyk"))
                == list(engine.stream(second, ranked_mode="anyk")))
        assert engine.stats.plan_hits == 1


class TestErrors:
    def test_unknown_ranked_mode(self):
        engine = random_chain_engine(40)
        with pytest.raises(QueryError, match="unknown ranked mode"):
            engine.execute("Q(A,B) :- R(A,B), S(B,C) ORDER BY A",
                           ranked_mode="bogus")

    def test_ranked_mode_needs_an_ordered_query(self):
        engine = random_chain_engine(41)
        with pytest.raises(QueryError, match="needs an ORDER BY"):
            engine.execute("Q(A,B) :- R(A,B), S(B,C)", ranked_mode="anyk")
        with pytest.raises(QueryError, match="needs an ORDER BY"):
            engine.execute("Q(A,B) :- R(A,B), S(B,C)", ranked_mode="drain")

    def test_anyk_rejects_aggregate_queries(self):
        engine = random_chain_engine(42)
        q = "Q(A, COUNT(*)) :- R(A,B), S(B,C) ORDER BY A LIMIT 2"
        with pytest.raises(QueryError, match="aggregate"):
            engine.execute(q, ranked_mode="anyk")

    def test_forced_materializing_strategy_cannot_anyk(self):
        engine = random_chain_engine(43)
        q = "Q(A,B) :- R(A,B), S(B,C) ORDER BY A LIMIT 2"
        for mode in ("binary", "naive"):
            with pytest.raises(QueryError, match="rank order"):
                engine.execute(q, mode=mode, ranked_mode="anyk")

    def test_drain_stays_available_everywhere(self):
        engine = random_chain_engine(44)
        q = "Q(A,B) :- R(A,B), S(B,C) ORDER BY A LIMIT 2"
        expected = list(engine.stream(q, mode="generic", ranked_mode="drain"))
        for mode in ALL_MODES:
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="drain")) == expected


class TestTieBreakDeterminism:
    def test_equal_keys_emit_in_full_row_order(self):
        # Every row ties on the constant sort key column.
        r = Relation("R", ("a", "k"), [(i, 7) for i in range(10)])
        s = Relation("S", ("a", "b"), [(i, 9 - i) for i in range(10)])
        engine = Engine(relations=[r, s], cache_results=False)
        q = "Q(A, B, K) :- R(A,K), S(A,B) ORDER BY K LIMIT 4"
        rows = [(a, b, 7) for a, b in ((i, 9 - i) for i in range(10))]
        want = sort_rows(rows, ("A", "B", "K"), [("K", False)], limit=4)
        for mode in ANYK_MODES:
            assert list(engine.stream(q, mode=mode,
                                      ranked_mode="anyk")) == want
