"""The in-recursion aggregate execution mode through the engine surface.

Covers the dispatcher's mode pricing and resolution, the aggregate-aware
variable order (group prefix + width-minimizing elimination tail), the
node-count separation between in-recursion elimination and drain-and-fold,
``explain()``'s elimination-placement report, plan-cache behaviour across
isomorphic aggregate queries and across modes, and the error surface of
forced modes.
"""

import pytest

from repro.engine import Engine
from repro.engine.cost import dispatch
from repro.errors import QueryError
from repro.joins.generic_join import generic_join_stream
from repro.joins.instrumentation import OperationCounter
from repro.joins.yannakakis import yannakakis_aggregate_stream
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.builder import Query
from repro.query.semiring import Aggregate, Semiring, register_semiring
from repro.query.variable_order import aggregate_elimination_order
from repro.relational.database import Database
from repro.relational.relation import Relation


def chain_engine(n_a=20, n_b=6, n_c=25) -> Engine:
    """A skewed acyclic chain R(A,B) ⋈ S(B,C): every A sees every B."""
    R = Relation("R", ("a", "b"), [(a, b) for a in range(n_a)
                                   for b in range(n_b)])
    S = Relation("S", ("b", "c"), [(b, c) for b in range(n_b)
                                   for c in range(n_c)])
    return Engine(relations=[R, S], cache_results=False)


GROUP_COUNT = "Q(A, COUNT(*)) :- R(A,B), S(B,C)"


class TestPlanner:
    def test_group_prefix_then_width_minimizing_tail(self):
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        order, width = aggregate_elimination_order(q, group=("A",))
        assert order == ("A", "B", "C")
        assert width == 1.0

    def test_cyclic_query_reports_fractional_width(self):
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C")),
                              Atom("T", ("A", "C"))])
        _order, width = aggregate_elimination_order(q, group=("A",))
        assert width == 1.5

    def test_fixed_variables_precede_group(self):
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        order, _w = aggregate_elimination_order(q, group=("A",), fixed=("B",))
        assert order[0] == "B" and order[1] == "A"


class TestNodeCounts:
    def test_in_recursion_beats_fold_asymptotically(self):
        engine = chain_engine()
        rec, fold = OperationCounter(), OperationCounter()
        r1 = engine.execute(GROUP_COUNT, mode="generic",
                            aggregate_mode="recursion", counter=rec)
        r2 = engine.execute(GROUP_COUNT, mode="generic",
                            aggregate_mode="fold", counter=fold)
        assert r1 == r2
        # Fold enumerates the whole join (~n_a*n_b*n_c nodes); recursion
        # visits each distinct (A,B) once and each distinct B tail once.
        assert fold.search_nodes > 5 * rec.search_nodes

    def test_memoized_elimination_reuses_separator_subtrees(self):
        engine = chain_engine(n_a=30, n_b=4, n_c=30)
        counter = OperationCounter()
        engine.execute(GROUP_COUNT, mode="leapfrog",
                       aggregate_mode="recursion", counter=counter)
        # 1 root + n_a*n_b group-prefix nodes + n_b memoized C-subtrees.
        assert counter.search_nodes <= 1 + 30 * 4 + 4


class TestDispatch:
    def test_auto_mode_picks_recursion_when_variables_eliminated(self):
        engine = chain_engine()
        explanation = engine.explain(GROUP_COUNT)
        assert explanation.aggregate_mode == "recursion"
        assert "agg[recursion]" in explanation.costs
        assert "agg[fold]" in explanation.costs
        assert (explanation.costs["agg[recursion]"]
                < explanation.costs["agg[fold]"])

    def test_full_group_by_resolves_to_fold(self):
        engine = chain_engine()
        explanation = engine.explain(
            "Q(A, B, C, COUNT(*)) :- R(A,B), S(B,C)", mode="generic")
        assert explanation.aggregate_mode == "fold"

    def test_dispatch_carries_faq_width(self):
        engine = chain_engine()
        spec = Query.coerce(GROUP_COUNT)
        decision = dispatch(spec.core, engine.database,
                            aggregates=spec.aggregates,
                            group=spec.head_vars)
        assert decision.faq_width == 1.0
        assert decision.aggregate_mode == "recursion"
        assert decision.payload is not None

    def test_forced_recursion_on_materializing_strategy_raises(self):
        engine = chain_engine()
        with pytest.raises(QueryError, match="cannot aggregate in-recursion"):
            engine.execute(GROUP_COUNT, mode="binary",
                           aggregate_mode="recursion")

    def test_aggregate_mode_on_plain_query_raises(self):
        engine = chain_engine()
        with pytest.raises(QueryError, match="needs an aggregate query"):
            engine.execute("Q(A,B) :- R(A,B)", aggregate_mode="recursion")

    def test_unknown_aggregate_mode_raises(self):
        engine = chain_engine()
        with pytest.raises(QueryError, match="unknown aggregate mode"):
            engine.execute(GROUP_COUNT, aggregate_mode="sideways")


class TestExplain:
    def test_elimination_placement_reported(self):
        engine = chain_engine()
        explanation = engine.explain(GROUP_COUNT, mode="generic",
                                     aggregate_mode="recursion")
        rendered = explanation.render()
        assert explanation.aggregate_mode == "recursion"
        assert any("A — group-by prefix (depth 0)" in line
                   for line in explanation.elimination)
        assert any("C — eliminated in-recursion at depth 2" in line
                   for line in explanation.elimination)
        assert "elimination:" in rendered
        assert "[recursion]" in rendered

    def test_pinned_prefix_variables_labeled_distinctly(self):
        engine = chain_engine()
        explanation = engine.explain(
            "Q(A, COUNT(*)) :- R(A,B), S(B,C), B == 2", mode="generic",
            aggregate_mode="recursion")
        assert any("B — constant-pinned prefix (depth 0)" in line
                   for line in explanation.elimination)
        assert any("A — group-by prefix (depth 1)" in line
                   for line in explanation.elimination)

    def test_fold_placement_reported(self):
        engine = chain_engine()
        explanation = engine.explain(GROUP_COUNT, mode="generic",
                                     aggregate_mode="fold")
        assert explanation.aggregate_mode == "fold"
        assert any("stream-fold" in line for line in explanation.elimination)

    def test_yannakakis_in_pass_placement_reported(self):
        engine = chain_engine()
        explanation = engine.explain(GROUP_COUNT, mode="yannakakis",
                                     aggregate_mode="recursion")
        assert any("join-tree passes" in line
                   for line in explanation.elimination)

    def test_variable_order_keeps_group_prefix(self):
        engine = chain_engine()
        explanation = engine.explain(GROUP_COUNT, mode="generic")
        assert explanation.variable_order[0] == "A"


class TestPlanCache:
    def test_isomorphic_aggregate_queries_share_plans(self):
        engine = chain_engine()
        engine.execute(GROUP_COUNT)
        hits = engine.stats.plan_hits
        engine.execute("P(X, COUNT(*)) :- R(X,Y), S(Y,Z)")
        assert engine.stats.plan_hits == hits + 1

    def test_modes_do_not_share_plan_entries(self):
        engine = chain_engine()
        engine.execute(GROUP_COUNT, mode="generic",
                       aggregate_mode="recursion")
        misses = engine.stats.plan_misses
        engine.execute(GROUP_COUNT, mode="generic", aggregate_mode="fold")
        assert engine.stats.plan_misses == misses + 1
        # And replaying each mode hits its own entry.
        hits = engine.stats.plan_hits
        engine.execute(GROUP_COUNT, mode="generic",
                       aggregate_mode="recursion")
        engine.execute(GROUP_COUNT, mode="generic", aggregate_mode="fold")
        assert engine.stats.plan_hits == hits + 2


class TestJoinsLayer:
    def test_wcoj_stream_rejects_interleaved_group_order(self):
        R = Relation("R", ("a", "b"), [(1, 2)])
        S = Relation("S", ("b", "c"), [(2, 3)])
        db = Database([R, S])
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        with pytest.raises(ValueError, match="group as a prefix"):
            list(generic_join_stream(
                q, db, order=("B", "A", "C"), head=("A",),
                aggregates=[Aggregate("count", None, "n")]))

    def test_yannakakis_in_pass_requires_product_semiring(self):
        name = "plusonly_monoid"

        def none_aware_max(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return max(a, b)

        try:
            register_semiring(Semiring(name, None, none_aware_max,
                                       lambda v: v))
        except QueryError:
            pass  # already registered by an earlier test in this session
        R = Relation("R", ("a", "b"), [(1, 2)])
        S = Relation("S", ("b", "c"), [(2, 3)])
        db = Database([R, S])
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        with pytest.raises(QueryError, match="product semiring"):
            list(yannakakis_aggregate_stream(
                q, db, ("A",), [Aggregate(name, "C", "m")]))
        # The engine resolves such aggregates to the fold mode instead.
        engine = Engine(database=db, cache_results=False)
        spec = Query([Atom("R", ("A", "B")), Atom("S", ("B", "C"))],
                     head=("A",), aggregates=[Aggregate(name, "C", "m")])
        explanation = engine.explain(spec, mode="yannakakis")
        assert explanation.aggregate_mode == "fold"
        assert sorted(engine.execute(spec, mode="yannakakis").tuples) == [(1, 3)]


class TestAvgAggregate:
    def test_avg_through_every_surface(self):
        engine = chain_engine(n_a=3, n_b=2, n_c=4)
        result = engine.execute("Q(A, AVG(C) AS ac) :- R(A,B), S(B,C)",
                                mode="generic", aggregate_mode="recursion")
        # Every A joins to every (B, C); AVG(C) = mean of range(4) = 1.5.
        assert sorted(result.tuples) == [(0, 1.5), (1, 1.5), (2, 1.5)]

    def test_avg_parses_from_text(self):
        spec = Query.coerce("Q(A, AVG(C) AS m) :- R(A,B), S(B,C)")
        assert spec.aggregates[0].kind == "avg"
