"""Per-call ``limit`` min-merge across ranked and aggregate plans.

``Engine._run`` must apply the effective limit (min of the query's own
LIMIT and the per-call one) strictly *after* ordering, in every mode
combination: any-k plans stream in sort order and are truncated, drain
plans heap-select, and ordered aggregate queries (which always drain the
group stream) sort their folded rows before the cut.  These tests pin the
truncation order and the min-merge across all of them.
"""

import pytest

from repro.engine import Engine
from repro.errors import QueryError
from repro.relational.relation import Relation


def ordered_engine() -> Engine:
    r = Relation("R", ("a", "b"),
                 [(a, b) for a in range(6) for b in range(5)])
    s = Relation("S", ("b", "c"),
                 [(b, c) for b in range(5) for c in range(4)])
    return Engine(relations=[r, s], cache_results=False)


TOPK = "Q(A,B) :- R(A,B), S(B,C) ORDER BY B DESC, A LIMIT 6"


class TestRankedLimitMerge:
    def test_per_call_limit_tightens_the_query_limit(self):
        engine = ordered_engine()
        anyk = engine.execute(TOPK, ranked_mode="anyk", limit=3)
        assert len(anyk) == 3
        # Ordering first, then the cut: the any-k prefix equals the
        # drain result's first three rows in rank order.
        drain_rows = list(engine.stream(TOPK, ranked_mode="drain"))
        anyk_rows = list(engine.stream(TOPK, ranked_mode="anyk", limit=3))
        assert anyk_rows == drain_rows[:3]

    def test_per_call_limit_looser_than_query_limit_is_ignored(self):
        engine = ordered_engine()
        result = list(engine.stream(TOPK, ranked_mode="anyk", limit=50))
        assert len(result) == 6
        assert result == list(engine.stream(TOPK, ranked_mode="drain"))

    def test_zero_per_call_limit(self):
        engine = ordered_engine()
        assert list(engine.stream(TOPK, ranked_mode="anyk", limit=0)) == []

    def test_modes_agree_for_every_merged_limit(self):
        engine = ordered_engine()
        for limit in (1, 2, 4, 6, 9):
            anyk = list(engine.stream(TOPK, ranked_mode="anyk",
                                      limit=limit))
            drain = list(engine.stream(TOPK, ranked_mode="drain",
                                       limit=limit))
            assert anyk == drain, limit
            assert len(anyk) == min(limit, 6)


ORDERED_AGG = ("Q(A, COUNT(*) AS n) :- R(A,B), S(B,C) "
               "ORDER BY n DESC, A LIMIT 4")


class TestOrderedAggregateLimitMerge:
    def test_aggregates_always_drain_and_sort_before_the_cut(self):
        engine = ordered_engine()
        explanation = engine.explain(ORDERED_AGG)
        assert explanation.ranked_mode == "drain"
        full = list(engine.stream(ORDERED_AGG))
        assert len(full) == 4
        cut = list(engine.stream(ORDERED_AGG, limit=2))
        assert cut == full[:2]

    def test_anyk_is_rejected_for_aggregate_queries(self):
        engine = ordered_engine()
        with pytest.raises(QueryError, match="anyk"):
            engine.execute(ORDERED_AGG, ranked_mode="anyk")
        with pytest.raises(QueryError, match="anyk"):
            engine.stream(ORDERED_AGG, ranked_mode="anyk", limit=1)

    def test_per_call_limit_smaller_than_group_count(self):
        # The per-call limit must not truncate the *join* under an
        # in-recursion aggregate plan — only the ordered group rows.
        engine = ordered_engine()
        rows = list(engine.stream(ORDERED_AGG, aggregate_mode="recursion",
                                  limit=3))
        assert rows == list(engine.stream(ORDERED_AGG,
                                          aggregate_mode="fold"))[:3]

    def test_execute_many_applies_the_merge_batch_wide(self):
        engine = ordered_engine()
        results = engine.execute_many([TOPK, TOPK], ranked_mode="anyk",
                                      limit=2)
        for result in results:
            assert len(result) == 2
