"""Tests for degree-constrained relation generators."""

from repro.datagen.relations import (
    functional_chain_database,
    random_relation,
    relation_with_degree_bound,
    relation_with_fd,
)
from repro.relational.statistics import degree, is_functional_dependency


class TestRandomRelation:
    def test_size_and_schema(self):
        r = random_relation("R", ("A", "B", "C"), 40, domain_size=10, seed=1)
        assert len(r) == 40
        assert r.attributes == ("A", "B", "C")

    def test_caps_at_domain_size(self):
        r = random_relation("R", ("A",), 100, domain_size=5, seed=1)
        assert len(r) == 5

    def test_deterministic(self):
        assert random_relation("R", ("A", "B"), 30, 8, seed=3) == \
            random_relation("R", ("A", "B"), 30, 8, seed=3)

    def test_values_in_domain(self):
        r = random_relation("R", ("A", "B"), 30, 6, seed=4)
        assert all(0 <= v < 6 for t in r for v in t)


class TestDegreeBoundedRelation:
    def test_degree_bound_respected(self):
        r = relation_with_degree_bound("W", ("A", "C", "D"), key=("A", "C"),
                                       max_degree=3, num_keys=20, domain_size=10, seed=2)
        assert degree(r, ("A", "C"), ("D",)) <= 3

    def test_number_of_keys(self):
        r = relation_with_degree_bound("W", ("A", "B"), key=("A",), max_degree=2,
                                       num_keys=15, domain_size=50, seed=3)
        assert len(r.column("A")) == 15

    def test_single_column_key_order_preserved(self):
        r = relation_with_degree_bound("W", ("X", "Y", "Z"), key=("Y",), max_degree=2,
                                       num_keys=5, domain_size=10, seed=4)
        assert r.attributes == ("X", "Y", "Z")
        assert degree(r, ("Y",), ("X", "Z")) <= 2


class TestFdRelation:
    def test_fd_holds(self):
        r = relation_with_fd("R", ("A", "B", "C"), determinant=("A",),
                             num_tuples=40, domain_size=12, seed=5)
        assert is_functional_dependency(r, ("A",), ("B", "C"))

    def test_composite_determinant(self):
        r = relation_with_fd("R", ("A", "B", "C"), determinant=("A", "B"),
                             num_tuples=40, domain_size=6, seed=6)
        assert is_functional_dependency(r, ("A", "B"), ("C",))


class TestFunctionalChain:
    def test_chain_structure(self):
        relations = functional_chain_database(chain_length=3, fanout=2, num_roots=5, seed=7)
        assert set(relations.keys()) == {"R1", "R2", "R3"}
        assert relations["R1"].attributes == ("X1",)
        assert relations["R2"].attributes == ("X1", "X2")
        assert degree(relations["R2"], ("X1",), ("X2",)) <= 2
