"""Tests for graph generators."""

from repro.datagen.graphs import (
    complete_bipartite_graph,
    erdos_renyi_graph,
    social_graph,
    undirected_closure,
    zipf_graph,
)
from repro.relational.statistics import max_degree


class TestErdosRenyi:
    def test_requested_size(self):
        g = erdos_renyi_graph(50, 200, seed=1)
        assert len(g) == 200
        assert g.attributes == ("A", "B")

    def test_deterministic_for_seed(self):
        assert erdos_renyi_graph(30, 50, seed=7) == erdos_renyi_graph(30, 50, seed=7)
        assert erdos_renyi_graph(30, 50, seed=7) != erdos_renyi_graph(30, 50, seed=8)

    def test_no_self_loops_by_default(self):
        g = erdos_renyi_graph(20, 100, seed=2)
        assert all(a != b for a, b in g)

    def test_caps_at_complete_graph(self):
        g = erdos_renyi_graph(5, 10_000, seed=3)
        assert len(g) == 5 * 4

    def test_vertex_ids_in_range(self):
        g = erdos_renyi_graph(10, 30, seed=4)
        assert all(0 <= a < 10 and 0 <= b < 10 for a, b in g)


class TestZipfAndSocial:
    def test_zipf_skews_degrees(self):
        g = zipf_graph(200, 400, skew=1.5, seed=5)
        # The most popular vertex should have a much higher degree than the
        # average (400/200 = 2 outgoing on average).
        assert max_degree(g, "A") >= 10

    def test_social_graph_size(self):
        g = social_graph(100, average_degree=5, seed=6)
        assert len(g) <= 100 * 5
        assert len(g) > 100

    def test_undirected_closure_symmetric(self):
        g = undirected_closure(erdos_renyi_graph(20, 40, seed=7))
        tuples = set(g.tuples)
        assert all((b, a) in tuples for a, b in tuples)


class TestCompleteBipartite:
    def test_size_and_disjoint_sides(self):
        g = complete_bipartite_graph(3, 4)
        assert len(g) == 12
        left = {a for a, _ in g}
        right = {b for _, b in g}
        assert left.isdisjoint(right)
