"""Tests for Loomis–Whitney instance generators."""

import pytest

from repro.bounds.agm import agm_bound, rho_star
from repro.datagen.loomis_whitney import (
    loomis_whitney_agm_tight_instance,
    loomis_whitney_bound_exponent,
    loomis_whitney_plan_gap_exponent,
    loomis_whitney_random_instance,
    loomis_whitney_skew_instance,
)
from repro.joins.generic_join import generic_join
from repro.joins.naive import nested_loop_join


class TestTightInstances:
    @pytest.mark.parametrize("k", [3, 4])
    def test_output_reaches_bound(self, k):
        query, database = loomis_whitney_agm_tight_instance(k, 81)
        bound = agm_bound(query, database)
        actual = len(generic_join(query, database))
        assert actual == pytest.approx(bound.bound, rel=1e-9)

    def test_relation_sizes_near_requested(self):
        query, database = loomis_whitney_agm_tight_instance(3, 100)
        assert all(abs(len(r) - 100) <= 20 for r in database)

    def test_exponents(self):
        assert loomis_whitney_bound_exponent(3) == pytest.approx(1.5)
        assert loomis_whitney_bound_exponent(4) == pytest.approx(4 / 3)
        assert loomis_whitney_plan_gap_exponent(3) == pytest.approx(2 / 3)
        assert loomis_whitney_plan_gap_exponent(5) == pytest.approx(0.8)

    def test_rho_star_matches_exponent(self):
        for k in (3, 4, 5):
            query, _ = loomis_whitney_agm_tight_instance(k, 16)
            assert rho_star(query) == pytest.approx(loomis_whitney_bound_exponent(k))


class TestRandomAndSkewInstances:
    def test_random_instance_sizes(self):
        query, database = loomis_whitney_random_instance(3, 50, seed=1)
        assert all(len(r) == 50 for r in database)

    def test_random_instance_deterministic(self):
        _, db1 = loomis_whitney_random_instance(3, 30, seed=5)
        _, db2 = loomis_whitney_random_instance(3, 30, seed=5)
        assert all(db1[name] == db2[name] for name in db1.relation_names)

    def test_random_instance_join_correct(self):
        query, database = loomis_whitney_random_instance(4, 25, seed=2)
        assert generic_join(query, database) == nested_loop_join(query, database)

    def test_skew_instance_output_linear(self):
        query, database = loomis_whitney_skew_instance(3, 90)
        n = database.max_relation_size()
        output = len(generic_join(query, database))
        assert output <= 3 * n

    def test_skew_instance_all_zero_point_included(self):
        query, database = loomis_whitney_skew_instance(4, 40)
        output = generic_join(query, database)
        assert (0, 0, 0, 0) in output
