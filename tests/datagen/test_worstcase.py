"""Tests for AGM-tight and skew instances."""


import pytest

from repro.bounds.agm import agm_bound
from repro.datagen.worstcase import (
    clique_agm_tight_instance,
    cycle_agm_tight_instance,
    triangle_agm_tight_instance,
    triangle_from_graph,
    triangle_skew_instance,
)
from repro.datagen.graphs import erdos_renyi_graph
from repro.joins.generic_join import generic_join
from repro.joins.binary_plans import best_left_deep_execution


class TestTriangleTight:
    def test_relation_sizes(self):
        query, database = triangle_agm_tight_instance(100)
        for name in ("R", "S", "T"):
            assert len(database[name]) == 100

    def test_output_reaches_agm_bound(self):
        query, database = triangle_agm_tight_instance(144)
        bound = agm_bound(query, database)
        actual = len(generic_join(query, database))
        assert actual == pytest.approx(bound.bound, rel=1e-9)
        assert actual == 12 ** 3

    def test_tiny_instance(self):
        query, database = triangle_agm_tight_instance(1)
        assert len(generic_join(query, database)) == 1


class TestTriangleSkew:
    def test_output_is_linear(self):
        query, database = triangle_skew_instance(200)
        n = database.max_relation_size()
        output = len(generic_join(query, database))
        assert output <= 2 * n

    def test_every_pairwise_plan_blows_up(self):
        query, database = triangle_skew_instance(100)
        n = database.max_relation_size()
        best = best_left_deep_execution(query, database)
        assert best.max_intermediate >= (n / 2) ** 2 / 4

    def test_relation_size_close_to_requested(self):
        query, database = triangle_skew_instance(100)
        assert abs(database.max_relation_size() - 100) <= 2


class TestOtherTightInstances:
    def test_cycle_reaches_bound(self):
        query, database = cycle_agm_tight_instance(4, 100)
        bound = agm_bound(query, database)
        actual = len(generic_join(query, database))
        assert actual == pytest.approx(bound.bound, rel=1e-9)

    def test_clique_reaches_bound(self):
        query, database = clique_agm_tight_instance(4, 64)
        bound = agm_bound(query, database)
        actual = len(generic_join(query, database))
        assert actual == pytest.approx(bound.bound, rel=1e-9)

    def test_triangle_from_graph_counts_directed_triangles(self):
        edges = erdos_renyi_graph(20, 60, seed=1)
        query, database = triangle_from_graph(edges)
        output = generic_join(query, database)
        # Cross-check against a direct enumeration.
        edge_set = set(edges.tuples)
        expected = {
            (a, b, c)
            for (a, b) in edge_set
            for c in range(20)
            if (b, c) in edge_set and (a, c) in edge_set
        }
        assert output.tuples == frozenset(expected)
