"""Version semantics of tuple-level deltas and relation removal."""

import pytest

from repro.errors import SchemaError
from repro.relational.database import AppliedDelta, Database
from repro.relational.relation import Relation


def db():
    return Database([Relation("R", ("a", "b"), {(1, 2), (3, 4)})])


class TestApplyDelta:
    def test_batch_bumps_version_exactly_once(self):
        d = db()
        before = d.version("R")
        applied = d.apply_delta("R", inserts=[(5, 6), (7, 8)],
                                deletes=[(1, 2)])
        assert d.version("R") == before + 1
        assert applied.version == before + 1
        assert d.get("R").tuples == {(3, 4), (5, 6), (7, 8)}

    def test_noop_batch_keeps_version(self):
        d = db()
        before = d.version("R")
        applied = d.apply_delta("R", inserts=[(1, 2)], deletes=[(9, 9)])
        assert not applied.changed
        assert applied.version == before
        assert d.version("R") == before

    def test_effective_delta_is_normalized(self):
        d = db()
        applied = d.apply_delta(
            "R",
            inserts=[(1, 2), (5, 6), (7, 8)],  # (1,2) already present
            deletes=[(7, 8), (9, 9)],          # (7,8) nets out, (9,9) absent
        )
        assert applied.inserted == frozenset({(5, 6)})
        assert applied.deleted == frozenset()
        assert d.get("R").tuples == {(1, 2), (3, 4), (5, 6)}

    def test_delete_wins_for_existing_tuple_in_same_batch(self):
        d = db()
        applied = d.apply_delta("R", inserts=[(1, 2)], deletes=[(1, 2)])
        assert applied.deleted == frozenset({(1, 2)})
        assert (1, 2) not in d.get("R").tuples

    def test_arity_error_leaves_state_unchanged(self):
        d = db()
        before_version = d.version("R")
        before_tuples = d.get("R").tuples
        with pytest.raises(SchemaError):
            d.apply_delta("R", inserts=[(1, 2, 3)])
        assert d.version("R") == before_version
        assert d.get("R").tuples == before_tuples

    def test_missing_relation_raises(self):
        with pytest.raises(SchemaError):
            db().apply_delta("S", inserts=[(1, 2)])

    def test_applied_delta_changed_flag(self):
        assert AppliedDelta("R", frozenset({(1,)}), frozenset(), 2).changed
        assert not AppliedDelta("R", frozenset(), frozenset(), 1).changed


class TestRemove:
    def test_remove_drops_and_bumps(self):
        d = db()
        before = d.version("R")
        d.remove("R")
        assert "R" not in d
        assert d.version("R") == before + 1

    def test_missing_relation_raises(self):
        with pytest.raises(SchemaError):
            db().remove("S")

    def test_readd_continues_version_sequence(self):
        d = db()
        d.remove("R")
        after_remove = d.version("R")
        d.add(Relation("R", ("a", "b"), {(9, 9)}))
        assert d.version("R") == after_remove + 1
