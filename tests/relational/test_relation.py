"""Tests for repro.relational.relation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.relation import Relation


def small_binary_relations():
    """Hypothesis strategy: binary relations over a small integer domain."""
    pairs = st.tuples(st.integers(0, 5), st.integers(0, 5))
    return st.sets(pairs, max_size=25).map(
        lambda tuples: Relation("R", ("A", "B"), tuples)
    )


class TestConstruction:
    def test_basic(self):
        r = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
        assert len(r) == 2
        assert r.name == "R"
        assert r.arity == 2

    def test_duplicates_removed(self):
        r = Relation("R", ("A",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "B"), [(1,)])

    def test_lists_accepted_as_tuples(self):
        r = Relation("R", ("A", "B"), [[1, 2]])
        assert (1, 2) in r

    def test_empty_relation(self):
        r = Relation.empty("R", ("A", "B"))
        assert r.is_empty()
        assert len(r) == 0

    def test_from_edges(self):
        r = Relation.from_edges("E", [(1, 2), (2, 3)])
        assert r.attributes == ("A", "B")
        assert len(r) == 2


class TestEqualityAndNaming:
    def test_equality_ignores_name(self):
        a = Relation("R", ("A",), [(1,)])
        b = Relation("S", ("A",), [(1,)])
        assert a == b

    def test_equality_requires_same_schema(self):
        a = Relation("R", ("A",), [(1,)])
        b = Relation("R", ("B",), [(1,)])
        assert a != b

    def test_with_name(self):
        a = Relation("R", ("A",), [(1,)])
        b = a.with_name("S")
        assert b.name == "S"
        assert a == b

    def test_with_tuples(self):
        a = Relation("R", ("A",), [(1,)])
        b = a.with_tuples([(2,), (3,)])
        assert len(b) == 2
        assert b.name == "R"

    def test_hashable(self):
        a = Relation("R", ("A",), [(1,)])
        b = Relation("S", ("A",), [(1,)])
        assert len({a, b}) == 1


class TestColumnAccess:
    def test_column(self):
        r = Relation("R", ("A", "B"), [(1, 2), (1, 3), (2, 3)])
        assert r.column("A") == {1, 2}
        assert r.column("B") == {2, 3}

    def test_columns(self):
        r = Relation("R", ("A", "B", "C"), [(1, 2, 3), (1, 2, 4)])
        assert r.columns(("A", "B")) == {(1, 2)}
        assert r.columns(("C", "A")) == {(3, 1), (4, 1)}

    def test_active_domain(self):
        r = Relation("R", ("A", "B"), [(1, 2), (3, 1)])
        assert r.active_domain() == {1, 2, 3}

    def test_tuple_as_dict(self):
        r = Relation("R", ("A", "B"), [(1, 2)])
        assert r.tuple_as_dict((1, 2)) == {"A": 1, "B": 2}

    def test_distinct_values_with_where(self):
        r = Relation("R", ("A", "B"), [(1, 2), (1, 3), (2, 4)])
        assert r.distinct_values("B", {"A": 1}) == {2, 3}
        assert r.distinct_values("B") == {2, 3, 4}


class TestOperations:
    def test_project(self):
        r = Relation("R", ("A", "B"), [(1, 2), (1, 3)])
        p = r.project(("A",))
        assert p.attributes == ("A",)
        assert len(p) == 1

    def test_project_reorders(self):
        r = Relation("R", ("A", "B"), [(1, 2)])
        assert (2, 1) in r.project(("B", "A"))

    def test_select(self):
        r = Relation("R", ("A", "B"), [(1, 2), (1, 3), (2, 3)])
        assert len(r.select({"A": 1})) == 2
        assert len(r.select({"A": 1, "B": 3})) == 1
        assert len(r.select({"A": 9})) == 0

    def test_filter(self):
        r = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
        assert len(r.filter(lambda t: t["A"] + t["B"] > 5)) == 1

    def test_rename(self):
        r = Relation("R", ("A", "B"), [(1, 2)])
        renamed = r.rename({"A": "X"})
        assert renamed.attributes == ("X", "B")
        assert (1, 2) in renamed

    def test_reorder(self):
        r = Relation("R", ("A", "B"), [(1, 2)])
        assert (2, 1) in r.reorder(("B", "A"))

    def test_reorder_rejects_non_permutation(self):
        r = Relation("R", ("A", "B"), [(1, 2)])
        with pytest.raises(SchemaError):
            r.reorder(("A",))

    def test_union(self):
        a = Relation("R", ("A",), [(1,)])
        b = Relation("R", ("A",), [(2,)])
        assert len(a.union(b)) == 2

    def test_union_schema_mismatch(self):
        a = Relation("R", ("A",), [(1,)])
        b = Relation("R", ("B",), [(2,)])
        with pytest.raises(SchemaError):
            a.union(b)

    def test_difference(self):
        a = Relation("R", ("A",), [(1,), (2,)])
        b = Relation("R", ("A",), [(2,)])
        assert a.difference(b).tuples == frozenset({(1,)})

    def test_sorted_tuples_deterministic(self):
        r = Relation("R", ("A", "B"), [(2, 1), (1, 2)])
        assert r.sorted_tuples() == [(1, 2), (2, 1)]


class TestRelationProperties:
    @given(small_binary_relations())
    @settings(max_examples=50, deadline=None)
    def test_projection_never_grows(self, relation):
        assert len(relation.project(("A",))) <= len(relation)

    @given(small_binary_relations())
    @settings(max_examples=50, deadline=None)
    def test_select_then_project_consistent(self, relation):
        for value in relation.column("A"):
            selected = relation.select({"A": value})
            assert selected.column("B") == relation.distinct_values("B", {"A": value})

    @given(small_binary_relations(), small_binary_relations())
    @settings(max_examples=50, deadline=None)
    def test_union_is_commutative(self, left, right):
        assert left.union(right) == right.union(left)

    @given(small_binary_relations())
    @settings(max_examples=50, deadline=None)
    def test_double_rename_round_trips(self, relation):
        there = relation.rename({"A": "X", "B": "Y"})
        back = there.rename({"X": "A", "Y": "B"})
        assert back == relation
