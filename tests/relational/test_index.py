"""Tests for repro.relational.index (HashIndex and TrieIndex)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.index import HashIndex, TrieIndex, build_tries
from repro.relational.relation import Relation


@pytest.fixture
def edges():
    return Relation("E", ("A", "B"), [(1, 2), (1, 3), (2, 3), (3, 1)])


class TestHashIndex:
    def test_lookup(self, edges):
        index = HashIndex(edges, ("A",))
        assert index.lookup((1,)) == frozenset({(1, 2), (1, 3)})
        assert index.lookup((9,)) == frozenset()

    def test_lookup_dict(self, edges):
        index = HashIndex(edges, ("A",))
        assert index.lookup_dict({"A": 2}) == frozenset({(2, 3)})

    def test_contains_and_count(self, edges):
        index = HashIndex(edges, ("A",))
        assert index.contains((1,))
        assert not index.contains((5,))
        assert index.count((1,)) == 2
        assert index.count((5,)) == 0

    def test_empty_key_single_bucket(self, edges):
        index = HashIndex(edges, ())
        assert index.lookup(()) == edges.tuples

    def test_composite_key(self, edges):
        index = HashIndex(edges, ("A", "B"))
        assert index.count((1, 2)) == 1
        assert len(index) == 4

    def test_max_bucket_size(self, edges):
        assert HashIndex(edges, ("A",)).max_bucket_size() == 2
        assert HashIndex(Relation("E", ("A",), []), ("A",)).max_bucket_size() == 0

    def test_keys(self, edges):
        assert set(HashIndex(edges, ("A",)).keys()) == {(1,), (2,), (3,)}


class TestTrieIndex:
    def test_root_values_sorted(self, edges):
        trie = TrieIndex(edges, ("A", "B"))
        assert trie.values(()) == [1, 2, 3]

    def test_prefix_values(self, edges):
        trie = TrieIndex(edges, ("A", "B"))
        assert trie.values((1,)) == [2, 3]
        assert trie.values((2,)) == [3]
        assert trie.values((9,)) == []

    def test_reverse_order(self, edges):
        trie = TrieIndex(edges, ("B", "A"))
        assert trie.values(()) == [1, 2, 3]
        assert trie.values((3,)) == [1, 2]

    def test_count(self, edges):
        trie = TrieIndex(edges, ("A", "B"))
        assert trie.count(()) == 4
        assert trie.count((1,)) == 2
        assert trie.count((9,)) == 0

    def test_num_children_and_contains_prefix(self, edges):
        trie = TrieIndex(edges, ("A", "B"))
        assert trie.num_children(()) == 3
        assert trie.contains_prefix((1, 2))
        assert not trie.contains_prefix((1, 9))

    def test_seek(self, edges):
        trie = TrieIndex(edges, ("A", "B"))
        assert trie.seek((), 2) == 2
        assert trie.seek((1,), 3) == 3
        assert trie.seek((1,), 4) is None
        assert trie.seek((9,), 0) is None

    def test_unknown_attribute_rejected(self, edges):
        with pytest.raises(SchemaError):
            TrieIndex(edges, ("A", "Z"))

    def test_projection_trie(self, edges):
        # A trie over a single attribute counts projected tuples.
        trie = TrieIndex(edges, ("A",))
        assert trie.values(()) == [1, 2, 3]

    def test_build_tries_uses_global_order(self, edges):
        other = Relation("F", ("B", "C"), [(2, 5)])
        tries = build_tries([edges, other], global_order=("C", "B", "A"))
        assert tries["E"].order == ("B", "A")
        assert tries["F"].order == ("C", "B")

    @given(st.sets(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_trie_values_match_relation_columns(self, tuples):
        relation = Relation("R", ("A", "B"), tuples)
        trie = TrieIndex(relation, ("A", "B"))
        assert set(trie.values(())) == relation.column("A")
        for a in relation.column("A"):
            assert set(trie.values((a,))) == relation.distinct_values("B", {"A": a})

    @given(st.sets(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_trie_counts_sum_to_relation_size(self, tuples):
        relation = Relation("R", ("A", "B"), tuples)
        trie = TrieIndex(relation, ("A", "B"))
        assert trie.count(()) == len(relation)
        assert sum(trie.count((a,)) for a in trie.values(())) == len(relation)
