"""Tests for repro.relational.schema."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Schema, as_schema


class TestSchemaConstruction:
    def test_basic_construction(self):
        schema = Schema(["A", "B", "C"])
        assert schema.attributes == ("A", "B", "C")
        assert schema.arity == 3

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", "B", "A"])

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", ""])

    def test_non_string_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", 3])

    def test_empty_schema_allowed(self):
        schema = Schema([])
        assert schema.arity == 0
        assert len(schema) == 0


class TestSchemaAccess:
    def test_position(self):
        schema = Schema(["A", "B", "C"])
        assert schema.position("A") == 0
        assert schema.position("C") == 2

    def test_position_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).position("Z")

    def test_positions_multiple(self):
        schema = Schema(["A", "B", "C"])
        assert schema.positions(["C", "A"]) == (2, 0)

    def test_contains(self):
        schema = Schema(["A", "B"])
        assert "A" in schema
        assert "Z" not in schema

    def test_iteration_and_indexing(self):
        schema = Schema(["A", "B"])
        assert list(schema) == ["A", "B"]
        assert schema[1] == "B"

    def test_equality_with_schema_and_tuple(self):
        assert Schema(["A", "B"]) == Schema(["A", "B"])
        assert Schema(["A", "B"]) == ("A", "B")
        assert Schema(["A", "B"]) != Schema(["B", "A"])

    def test_hashable(self):
        assert len({Schema(["A"]), Schema(["A"]), Schema(["B"])}) == 2


class TestSchemaDerivation:
    def test_project(self):
        schema = Schema(["A", "B", "C"]).project(["C", "A"])
        assert schema.attributes == ("C", "A")

    def test_project_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Schema(["A"]).project(["B"])

    def test_rename(self):
        schema = Schema(["A", "B"]).rename({"A": "X"})
        assert schema.attributes == ("X", "B")

    def test_rename_collision_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["A", "B"]).rename({"A": "B"})

    def test_union_preserves_order(self):
        left = Schema(["A", "B"])
        right = Schema(["B", "C"])
        assert left.union(right).attributes == ("A", "B", "C")

    def test_intersection(self):
        left = Schema(["A", "B", "C"])
        right = Schema(["C", "B", "D"])
        assert left.intersection(right) == ("B", "C")

    def test_is_prefix_of(self):
        assert Schema(["A", "B"]).is_prefix_of(Schema(["A", "B", "C"]))
        assert not Schema(["B"]).is_prefix_of(Schema(["A", "B"]))

    def test_as_schema_coercion(self):
        assert as_schema(("A", "B")) == Schema(["A", "B"])
        schema = Schema(["A"])
        assert as_schema(schema) is schema
