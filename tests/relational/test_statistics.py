"""Tests for repro.relational.statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.statistics import (
    cardinality,
    degree,
    is_functional_dependency,
    max_degree,
    relation_statistics,
)


@pytest.fixture
def orders():
    # (customer, order, item) with customer 1 having two orders.
    return Relation("Orders", ("customer", "order", "item"),
                    [(1, 10, "a"), (1, 11, "b"), (2, 12, "a"), (2, 12, "b")])


class TestDegree:
    def test_cardinality(self, orders):
        assert cardinality(orders) == 4

    def test_degree_single_key(self, orders):
        assert degree(orders, ("customer",), ("order",)) == 2
        assert degree(orders, ("order",), ("item",)) == 2
        assert degree(orders, ("order",), ("customer",)) == 1

    def test_degree_empty_key_counts_distinct(self, orders):
        assert degree(orders, (), ("customer",)) == 2
        assert degree(orders, (), ("customer", "order", "item")) == 4

    def test_degree_composite_key(self, orders):
        assert degree(orders, ("customer", "order"), ("item",)) == 2

    def test_degree_empty_relation(self):
        empty = Relation("R", ("A", "B"), [])
        assert degree(empty, ("A",), ("B",)) == 0

    def test_degree_requires_y(self, orders):
        with pytest.raises(SchemaError):
            degree(orders, ("customer",), ())

    def test_degree_unknown_attribute(self, orders):
        with pytest.raises(SchemaError):
            degree(orders, ("nope",), ("item",))

    def test_max_degree(self, orders):
        assert max_degree(orders, "customer") == 2
        assert max_degree(Relation("R", ("A",), []), "A") == 0

    def test_is_functional_dependency(self, orders):
        assert is_functional_dependency(orders, ("order",), ("customer",))
        assert not is_functional_dependency(orders, ("customer",), ("order",))
        assert is_functional_dependency(Relation("R", ("A", "B"), []), ("A",), ("B",))


class TestRelationStatistics:
    def test_summary_contains_cardinality_and_degrees(self, orders):
        stats = relation_statistics(orders)
        assert stats.cardinality == 4
        assert stats.attribute_cardinalities["customer"] == 2
        assert stats.degree_of((), ("customer", "order", "item")) == 4
        assert stats.degree_of(("customer",), ("order", "item")) == 2

    def test_degree_of_missing_key_returns_none(self, orders):
        stats = relation_statistics(orders)
        assert stats.degree_of(("customer", "order"), ("item",)) is None

    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_degree_bounds_cardinality(self, tuples):
        relation = Relation("R", ("A", "B"), tuples)
        # max degree per A times number of distinct A values is >= |R|.
        per_a = degree(relation, ("A",), ("B",))
        assert per_a * len(relation.column("A")) >= len(relation)
        # Degree never exceeds total distinct B values.
        assert per_a <= len(relation.column("B"))
