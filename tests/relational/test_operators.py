"""Tests for repro.relational.operators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.joins.instrumentation import OperationCounter
from repro.relational.operators import (
    cartesian_product,
    difference,
    intersect_sorted,
    intersect_value_sets,
    natural_join,
    project,
    rename,
    select,
    semijoin,
    union,
)
from repro.relational.relation import Relation


def rel(name, attrs, tuples):
    return Relation(name, attrs, tuples)


class TestBasicOperators:
    def test_select(self):
        r = rel("R", ("A", "B"), [(1, 2), (2, 2), (1, 3)])
        assert len(select(r, {"A": 1})) == 2

    def test_project_removes_duplicates(self):
        r = rel("R", ("A", "B"), [(1, 2), (1, 3)])
        assert len(project(r, ("A",))) == 1

    def test_rename(self):
        r = rel("R", ("A",), [(1,)])
        assert rename(r, {"A": "X"}).attributes == ("X",)

    def test_union_and_difference(self):
        a = rel("R", ("A",), [(1,), (2,)])
        b = rel("R", ("A",), [(2,), (3,)])
        assert len(union(a, b)) == 3
        assert difference(a, b).tuples == frozenset({(1,)})


class TestNaturalJoin:
    def test_join_on_shared_attribute(self):
        r = rel("R", ("A", "B"), [(1, 2), (2, 3)])
        s = rel("S", ("B", "C"), [(2, 10), (2, 11), (9, 9)])
        out = natural_join(r, s)
        assert out.attributes == ("A", "B", "C")
        assert out.tuples == frozenset({(1, 2, 10), (1, 2, 11)})

    def test_join_multiple_shared_attributes(self):
        r = rel("R", ("A", "B", "C"), [(1, 2, 3), (1, 2, 4)])
        s = rel("S", ("B", "C", "D"), [(2, 3, 7)])
        out = natural_join(r, s)
        assert out.tuples == frozenset({(1, 2, 3, 7)})

    def test_join_no_shared_attributes_is_product(self):
        r = rel("R", ("A",), [(1,), (2,)])
        s = rel("S", ("B",), [(3,)])
        out = natural_join(r, s)
        assert len(out) == 2
        assert out.attributes == ("A", "B")

    def test_join_with_empty_relation(self):
        r = rel("R", ("A", "B"), [(1, 2)])
        s = rel("S", ("B", "C"), [])
        assert natural_join(r, s).is_empty()

    def test_join_is_commutative_up_to_column_order(self):
        r = rel("R", ("A", "B"), [(1, 2), (2, 3)])
        s = rel("S", ("B", "C"), [(2, 10), (3, 11)])
        left = natural_join(r, s)
        right = natural_join(s, r).reorder(("A", "B", "C"))
        assert left == right

    def test_join_counter_records_intermediates(self):
        counter = OperationCounter()
        r = rel("R", ("A", "B"), [(1, 2)])
        s = rel("S", ("B", "C"), [(2, 3)])
        natural_join(r, s, counter=counter)
        assert counter.tuples_emitted == 1
        assert counter.hash_inserts >= 1


class TestSemijoin:
    def test_semijoin_keeps_matching(self):
        r = rel("R", ("A", "B"), [(1, 2), (3, 4)])
        s = rel("S", ("B", "C"), [(2, 9)])
        assert semijoin(r, s).tuples == frozenset({(1, 2)})

    def test_semijoin_no_shared_attributes(self):
        r = rel("R", ("A",), [(1,)])
        s = rel("S", ("B",), [(2,)])
        assert semijoin(r, s) == r
        assert semijoin(r, rel("S", ("B",), [])).is_empty()

    def test_semijoin_subset_of_left(self):
        r = rel("R", ("A", "B"), [(1, 2), (3, 4)])
        s = rel("S", ("B",), [(2,), (4,)])
        assert semijoin(r, s) == r


class TestCartesianProduct:
    def test_product(self):
        r = rel("R", ("A",), [(1,), (2,)])
        s = rel("S", ("B",), [(3,), (4,)])
        assert len(cartesian_product(r, s)) == 4

    def test_product_rejects_shared_attributes(self):
        r = rel("R", ("A",), [(1,)])
        s = rel("S", ("A",), [(2,)])
        with pytest.raises(SchemaError):
            cartesian_product(r, s)


class TestIntersections:
    def test_intersect_sorted(self):
        assert intersect_sorted([[1, 2, 3, 4], [2, 4, 6], [0, 2, 4, 8]]) == [2, 4]

    def test_intersect_sorted_empty_input(self):
        assert intersect_sorted([]) == []
        assert intersect_sorted([[1, 2], []]) == []

    def test_intersect_sorted_single_list(self):
        assert intersect_sorted([[3, 1, 2]]) == [3, 1, 2] or intersect_sorted([[1, 2, 3]]) == [1, 2, 3]

    def test_intersect_value_sets(self):
        assert intersect_value_sets([{1, 2, 3}, [2, 3, 4], {3}]) == {3}

    def test_intersection_counter_charges_smallest(self):
        counter = OperationCounter()
        intersect_value_sets([{1, 2, 3, 4, 5}, {2, 3}], counter=counter)
        assert counter.intersection_steps == 2


class TestJoinProperties:
    pairs = st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=20)

    @given(pairs, pairs)
    @settings(max_examples=50, deadline=None)
    def test_join_matches_nested_loop_semantics(self, r_tuples, s_tuples):
        r = rel("R", ("A", "B"), r_tuples)
        s = rel("S", ("B", "C"), s_tuples)
        expected = {
            (a, b, c)
            for (a, b) in r_tuples
            for (b2, c) in s_tuples
            if b == b2
        }
        assert natural_join(r, s).tuples == frozenset(expected)

    @given(pairs, pairs)
    @settings(max_examples=50, deadline=None)
    def test_semijoin_equals_projection_of_join(self, r_tuples, s_tuples):
        r = rel("R", ("A", "B"), r_tuples)
        s = rel("S", ("B", "C"), s_tuples)
        via_join = natural_join(r, s).project(("A", "B"))
        assert semijoin(r, s).tuples == via_join.tuples
