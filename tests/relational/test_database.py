"""Tests for repro.relational.database."""

import pytest

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation


@pytest.fixture
def db():
    return Database([
        Relation("R", ("A", "B"), [(1, 2), (2, 3)]),
        Relation("S", ("B", "C"), [(2, 4)]),
    ])


class TestDatabase:
    def test_get_and_getitem(self, db):
        assert db.get("R") == db["R"]
        assert len(db["S"]) == 1

    def test_missing_relation(self, db):
        with pytest.raises(SchemaError):
            db.get("T")

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(SchemaError):
            db.add(Relation("R", ("A",), []))

    def test_replace_overwrites(self, db):
        db.replace(Relation("R", ("A", "B"), [(9, 9)]))
        assert len(db["R"]) == 1

    def test_contains_and_len(self, db):
        assert "R" in db
        assert "T" not in db
        assert len(db) == 2

    def test_iteration(self, db):
        assert {r.name for r in db} == {"R", "S"}

    def test_relation_names(self, db):
        assert set(db.relation_names) == {"R", "S"}

    def test_total_tuples_and_max_size(self, db):
        assert db.total_tuples() == 3
        assert db.max_relation_size() == 2
        assert Database().max_relation_size() == 0

    def test_active_domain(self, db):
        assert db.active_domain() == {1, 2, 3, 4}

    def test_summary(self, db):
        assert db.summary() == {"R": 2, "S": 1}

    def test_from_mapping_renames(self):
        base = Relation("E", ("A", "B"), [(1, 2)])
        db = Database.from_mapping({"R": base, "S": base})
        assert db["R"].name == "R"
        assert db["S"].name == "S"
        assert db["R"].tuples == db["S"].tuples
