"""Tests for conditional terms and term bags."""

from fractions import Fraction

import pytest

from repro.errors import ProofError
from repro.infotheory.set_functions import uniform_step_function
from repro.panda.terms import ConditionalTerm, TermBag


class TestConditionalTerm:
    def test_unconditional(self):
        term = ConditionalTerm.unconditional(["A", "B"])
        assert term.is_unconditional
        assert term.free_variables == frozenset({"A", "B"})
        assert str(term) == "h(AB)"

    def test_conditional(self):
        term = ConditionalTerm(y=frozenset("ABC"), x=frozenset("A"))
        assert not term.is_unconditional
        assert term.free_variables == frozenset({"B", "C"})
        assert str(term) == "h(ABC|A)"

    def test_requires_x_strict_subset(self):
        with pytest.raises(ProofError):
            ConditionalTerm(y=frozenset("AB"), x=frozenset("AB"))
        with pytest.raises(ProofError):
            ConditionalTerm(y=frozenset("A"), x=frozenset("B"))

    def test_evaluate(self):
        h = uniform_step_function(["A", "B", "C"], threshold=2)
        term = ConditionalTerm(y=frozenset("ABC"), x=frozenset("A"))
        assert term.evaluate(h) == pytest.approx(1.0)

    def test_hashable_and_equal(self):
        a = ConditionalTerm(y=frozenset("AB"), x=frozenset("A"))
        b = ConditionalTerm(y=frozenset(["A", "B"]), x=frozenset(["A"]))
        assert a == b
        assert len({a, b}) == 1


class TestTermBag:
    def test_add_and_weight(self):
        bag = TermBag()
        term = ConditionalTerm.unconditional(["A"])
        bag.add(term, Fraction(1, 2))
        bag.add(term, Fraction(1, 4))
        assert bag.weight(term) == Fraction(3, 4)
        assert term in bag

    def test_remove_to_zero_deletes(self):
        bag = TermBag()
        term = ConditionalTerm.unconditional(["A"])
        bag.add(term, 1)
        bag.remove(term, 1)
        assert term not in bag
        assert len(bag) == 0

    def test_negative_weight_rejected(self):
        bag = TermBag()
        term = ConditionalTerm.unconditional(["A"])
        bag.add(term, Fraction(1, 2))
        with pytest.raises(ProofError):
            bag.remove(term, 1)

    def test_copy_is_independent(self):
        term = ConditionalTerm.unconditional(["A"])
        bag = TermBag({term: Fraction(1)})
        clone = bag.copy()
        clone.remove(term, 1)
        assert bag.weight(term) == 1
        assert clone.weight(term) == 0

    def test_total_weight_and_items(self):
        a = ConditionalTerm.unconditional(["A"])
        b = ConditionalTerm(y=frozenset("AB"), x=frozenset("A"))
        bag = TermBag({a: Fraction(1, 2), b: Fraction(1, 3)})
        assert bag.total_weight() == Fraction(5, 6)
        assert set(dict(bag.items()).keys()) == {a, b}

    def test_evaluate_against_set_function(self):
        h = uniform_step_function(["A", "B"], threshold=2)
        bag = TermBag({
            ConditionalTerm.unconditional(["A"]): Fraction(2),
            ConditionalTerm(y=frozenset("AB"), x=frozenset("A")): Fraction(1),
        })
        # 2 * h(A) + 1 * h(AB|A) = 2*1 + 1 = 3.
        assert bag.evaluate(h) == pytest.approx(3.0)

    def test_equality(self):
        a = ConditionalTerm.unconditional(["A"])
        assert TermBag({a: 1}) == TermBag({a: Fraction(1)})
        assert TermBag({a: 1}) != TermBag({a: 2})

    def test_string_weights_accepted(self):
        a = ConditionalTerm.unconditional(["A"])
        bag = TermBag({a: "1/3"})
        assert bag.weight(a) == Fraction(1, 3)
