"""Tests for Shannon-flow inequalities and their extraction from LPs."""

from fractions import Fraction

import pytest

from repro.constraints.degree import (
    DegreeConstraint,
    DegreeConstraintSet,
    cardinality_constraints,
)
from repro.datagen.worstcase import triangle_agm_tight_instance
from repro.errors import ProofError
from repro.infotheory.set_functions import uniform_step_function
from repro.panda.example1 import example1_constraints, example1_inequality
from repro.panda.shannon_flow import (
    ShannonFlowInequality,
    constraint_log_bounds,
    extract_flow_from_polymatroid_dual,
    shannon_flow_from_constraints,
)
from repro.panda.terms import ConditionalTerm


def triangle_flow(weight=Fraction(1, 2)):
    return ShannonFlowInequality.from_terms(("A", "B", "C"), {
        ConditionalTerm.unconditional(["A", "B"]): weight,
        ConditionalTerm.unconditional(["B", "C"]): weight,
        ConditionalTerm.unconditional(["A", "C"]): weight,
    })


class TestShannonFlowInequality:
    def test_triangle_flow_is_valid(self):
        assert triangle_flow().is_valid()

    def test_underweighted_flow_is_invalid(self):
        assert not triangle_flow(Fraction(2, 5)).is_valid()

    def test_example1_inequality_valid(self):
        assert example1_inequality().is_valid()

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ProofError):
            ShannonFlowInequality.from_terms(("A",), {
                ConditionalTerm.unconditional(["A"]): -1,
            })

    def test_foreign_variable_rejected(self):
        with pytest.raises(ProofError):
            ShannonFlowInequality.from_terms(("A",), {
                ConditionalTerm.unconditional(["Z"]): 1,
            })

    def test_zero_coefficients_dropped(self):
        flow = ShannonFlowInequality.from_terms(("A", "B"), {
            ConditionalTerm.unconditional(["A"]): 0,
            ConditionalTerm.unconditional(["A", "B"]): 1,
        })
        assert len(flow.coefficients) == 1

    def test_holds_for_concrete_polymatroid(self):
        h = uniform_step_function(["A", "B", "C"], threshold=2)
        assert triangle_flow().holds_for(h)

    def test_term_bag_round_trip(self):
        flow = triangle_flow()
        bag = flow.term_bag()
        assert bag.total_weight() == Fraction(3, 2)

    def test_weighted_log_bound(self):
        flow = triangle_flow()
        bounds = {term: 10.0 for term, _ in flow.coefficients}
        assert flow.weighted_log_bound(bounds) == pytest.approx(15.0)

    def test_weighted_log_bound_missing_statistic(self):
        flow = triangle_flow()
        with pytest.raises(ProofError):
            flow.weighted_log_bound({})

    def test_str(self):
        assert "h(ABC) <=" in str(triangle_flow())


class TestFromConstraints:
    def test_build_from_constraint_indices(self):
        dc = example1_constraints(64, 64, 64, 4, 4)
        flow = shannon_flow_from_constraints(
            dc, {i: Fraction(1, 2) for i in range(len(dc))})
        assert flow.is_valid()
        assert len(flow.coefficients) == 5

    def test_out_of_range_index_rejected(self):
        dc = example1_constraints(64, 64, 64, 4, 4)
        with pytest.raises(ProofError):
            shannon_flow_from_constraints(dc, {99: 1})

    def test_constraint_log_bounds_picks_tightest(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A", "B"), 16, guard="R"),
            DegreeConstraint.cardinality(("A", "B"), 4, guard="S"),
        ])
        bounds = constraint_log_bounds(dc)
        term = ConditionalTerm.unconditional(["A", "B"])
        assert bounds[term] == pytest.approx(2.0)


class TestExtraction:
    def test_extracted_flow_is_valid_and_matches_bound(self):
        query, database = triangle_agm_tight_instance(100)
        dc = cardinality_constraints(query, database)
        flow = extract_flow_from_polymatroid_dual(dc)
        assert flow.is_valid()
        # <delta, n> equals the polymatroid (= AGM) bound, eq. (73).
        from repro.bounds.polymatroid import polymatroid_bound
        bounds = constraint_log_bounds(dc)
        assert flow.weighted_log_bound(bounds) == pytest.approx(
            polymatroid_bound(dc).log2_bound, abs=1e-4)

    def test_extracted_flow_for_example1(self):
        dc = example1_constraints(128, 128, 128, 4, 4)
        flow = extract_flow_from_polymatroid_dual(dc)
        assert flow.is_valid()
        bounds = constraint_log_bounds(dc)
        from repro.bounds.polymatroid import polymatroid_bound
        assert flow.weighted_log_bound(bounds) == pytest.approx(
            polymatroid_bound(dc).log2_bound, abs=1e-4)
