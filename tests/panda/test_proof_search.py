"""Tests for the automatic proof-sequence search."""

from fractions import Fraction


from repro.constraints.degree import cardinality_constraints
from repro.datagen.worstcase import triangle_agm_tight_instance
from repro.panda.example1 import example1_inequality
from repro.panda.proof_search import derive_proof_sequence
from repro.panda.shannon_flow import ShannonFlowInequality, extract_flow_from_polymatroid_dual
from repro.panda.terms import ConditionalTerm

HALF = Fraction(1, 2)


def flow(variables, coefficients):
    return ShannonFlowInequality.from_terms(variables, coefficients)


class TestDeriveProofSequence:
    def test_trivial_inequality_needs_no_steps(self):
        inequality = flow(("A", "B"), {
            ConditionalTerm.unconditional(["A", "B"]): 1,
        })
        sequence = derive_proof_sequence(inequality)
        assert sequence is not None
        assert len(sequence) == 0
        assert sequence.verify()

    def test_cartesian_product_inequality(self):
        # h(AB) <= h(A) + h(B): one lift plus one composition.
        inequality = flow(("A", "B"), {
            ConditionalTerm.unconditional(["A"]): 1,
            ConditionalTerm.unconditional(["B"]): 1,
        })
        sequence = derive_proof_sequence(inequality)
        assert sequence is not None
        assert sequence.verify()

    def test_chain_with_degree_terms(self):
        # h(ABC) <= h(AB) + h(BC|B): lift then compose.
        inequality = flow(("A", "B", "C"), {
            ConditionalTerm.unconditional(["A", "B"]): 1,
            ConditionalTerm(y=frozenset("BC"), x=frozenset("B")): 1,
        })
        sequence = derive_proof_sequence(inequality)
        assert sequence is not None
        assert sequence.verify()

    def test_triangle_shearer_inequality(self):
        inequality = flow(("A", "B", "C"), {
            ConditionalTerm.unconditional(["A", "B"]): HALF,
            ConditionalTerm.unconditional(["B", "C"]): HALF,
            ConditionalTerm.unconditional(["A", "C"]): HALF,
        })
        sequence = derive_proof_sequence(inequality)
        assert sequence is not None
        assert sequence.verify()

    def test_example1_inequality(self):
        sequence = derive_proof_sequence(example1_inequality())
        assert sequence is not None
        assert sequence.verify()

    def test_extracted_triangle_flow(self):
        query, database = triangle_agm_tight_instance(64)
        dc = cardinality_constraints(query, database)
        inequality = extract_flow_from_polymatroid_dual(dc)
        sequence = derive_proof_sequence(inequality)
        assert sequence is not None
        assert sequence.verify()

    def test_invalid_inequality_yields_none(self):
        # Coefficients too small to cover h(ABC): no proof exists.
        inequality = flow(("A", "B", "C"), {
            ConditionalTerm.unconditional(["A", "B"]): Fraction(1, 3),
            ConditionalTerm.unconditional(["B", "C"]): Fraction(1, 3),
            ConditionalTerm.unconditional(["A", "C"]): Fraction(1, 3),
        })
        assert not inequality.is_valid()
        assert derive_proof_sequence(inequality, max_depth=8, max_nodes=2000) is None

    def test_budget_exhaustion_returns_none(self):
        sequence = derive_proof_sequence(example1_inequality(), max_depth=2)
        assert sequence is None
