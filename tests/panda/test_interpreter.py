"""Tests for the PANDA interpreter (proof sequence -> relational operations)."""

from fractions import Fraction

import pytest

from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet, cardinality_constraints
from repro.datagen.worstcase import triangle_agm_tight_instance, triangle_skew_instance
from repro.errors import ProofError
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.panda.interpreter import PandaInterpreter, panda_evaluate
from repro.panda.proof_sequence import (
    CompositionStep,
    DecompositionStep,
    ProofSequence,
    SubmodularityStep,
)
from repro.panda.shannon_flow import ShannonFlowInequality
from repro.panda.terms import ConditionalTerm

HALF = Fraction(1, 2)
f = frozenset


def triangle_flow():
    return ShannonFlowInequality.from_terms(("A", "B", "C"), {
        ConditionalTerm.unconditional(["A", "B"]): HALF,
        ConditionalTerm.unconditional(["B", "C"]): HALF,
        ConditionalTerm.unconditional(["A", "C"]): HALF,
    })


def triangle_proof():
    return ProofSequence(triangle_flow(), [
        DecompositionStep(y=f("AB"), x=f("A"), weight=HALF),
        SubmodularityStep(i_set=f("A"), j_set=f("BC"), weight=HALF),
        CompositionStep(y=f("ABC"), x=f("BC"), weight=HALF),
        SubmodularityStep(i_set=f("AB"), j_set=f("AC"), weight=HALF),
        CompositionStep(y=f("ABC"), x=f("AC"), weight=HALF),
    ])


class TestTrianglePanda:
    """Running the Section-2 entropy-proof algorithm through the generic
    PANDA machinery must reproduce the triangle join."""

    def test_output_matches_generic_join_tight(self):
        query, database = triangle_agm_tight_instance(100)
        dc = cardinality_constraints(query, database)
        interpreter = PandaInterpreter(query, database, dc, triangle_proof())
        result = interpreter.run()
        assert result.output == generic_join(query, database)

    def test_output_matches_generic_join_skew(self):
        query, database = triangle_skew_instance(100)
        dc = cardinality_constraints(query, database)
        interpreter = PandaInterpreter(query, database, dc, triangle_proof())
        result = interpreter.run()
        assert result.output == generic_join(query, database)

    def test_branch_outputs_and_log(self):
        query, database = triangle_skew_instance(60)
        dc = cardinality_constraints(query, database)
        result = PandaInterpreter(query, database, dc, triangle_proof()).run()
        # Two compositions reach the full variable set -> two branches.
        assert len(result.branch_outputs) == 2
        assert len(result.log) == len(triangle_proof().steps) + 1
        assert result.max_intermediate == max(result.intermediate_sizes)

    def test_intermediates_within_agm_bound_with_paper_theta(self):
        import math
        query, database = triangle_skew_instance(200)
        dc = cardinality_constraints(query, database)
        r, s, t = database["R"], database["S"], database["T"]
        theta = math.sqrt(len(r) * len(s) / len(t))
        interpreter = PandaInterpreter(query, database, dc, triangle_proof(),
                                       thresholds={0: theta})
        result = interpreter.run()
        agm = math.sqrt(len(r) * len(s) * len(t))
        assert result.max_intermediate <= agm + 1e-9

    def test_counter_is_charged(self):
        query, database = triangle_skew_instance(60)
        dc = cardinality_constraints(query, database)
        counter = OperationCounter()
        PandaInterpreter(query, database, dc, triangle_proof(), counter=counter).run()
        assert counter.total() > 0
        assert counter.intermediate_tuples > 0


class TestInterpreterErrors:
    def test_missing_guard_for_term(self):
        query, database = triangle_agm_tight_instance(25)
        # Constraints exist only for R and S, but the inequality needs T too.
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), 100, guard="R"),
            DegreeConstraint.cardinality(("B", "C"), 100, guard="S"),
        ])
        with pytest.raises(ProofError):
            PandaInterpreter(query, database, dc, triangle_proof()).run()

    def test_sequence_that_never_reaches_goal(self):
        query, database = triangle_agm_tight_instance(25)
        dc = cardinality_constraints(query, database)
        sequence = ProofSequence(triangle_flow(), [
            DecompositionStep(y=f("AB"), x=f("A"), weight=HALF),
        ])
        with pytest.raises(ProofError):
            PandaInterpreter(query, database, dc, sequence).run()

    def test_composition_without_affiliation(self):
        query, database = triangle_agm_tight_instance(25)
        dc = cardinality_constraints(query, database)
        sequence = ProofSequence(triangle_flow(), [
            # h(ABC|AB) was never affiliated: the composition must fail.
            SubmodularityStep(i_set=f("AC"), j_set=f("AB"), weight=HALF),
            CompositionStep(y=f("ABC"), x=f("AB"), weight=HALF),
            CompositionStep(y=f("ABC"), x=f("BC"), weight=HALF),
        ])
        with pytest.raises(ProofError):
            PandaInterpreter(query, database, dc, sequence).run()


class TestEndToEndPandaEvaluate:
    def test_panda_evaluate_triangle(self):
        query, database = triangle_agm_tight_instance(64)
        dc = cardinality_constraints(query, database)
        result = panda_evaluate(query, database, dc)
        assert result.output == generic_join(query, database)

    def test_panda_evaluate_skew_triangle(self):
        query, database = triangle_skew_instance(80)
        dc = cardinality_constraints(query, database)
        result = panda_evaluate(query, database, dc)
        assert result.output == generic_join(query, database)
