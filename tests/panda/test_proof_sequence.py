"""Tests for proof steps and proof sequences."""

from fractions import Fraction

import pytest

from repro.errors import ProofError
from repro.panda.example1 import example1_proof_sequence
from repro.panda.proof_sequence import (
    CompositionStep,
    DecompositionStep,
    ProofSequence,
    SubmodularityStep,
    step_kind,
)
from repro.panda.shannon_flow import ShannonFlowInequality
from repro.panda.terms import ConditionalTerm, TermBag

HALF = Fraction(1, 2)
f = frozenset


def triangle_inequality():
    return ShannonFlowInequality.from_terms(("A", "B", "C"), {
        ConditionalTerm.unconditional(["A", "B"]): HALF,
        ConditionalTerm.unconditional(["B", "C"]): HALF,
        ConditionalTerm.unconditional(["A", "C"]): HALF,
    })


def triangle_proof_steps():
    """The proof of eq. (21)-(24), scaled to weight 1/2 per copy."""
    return [
        DecompositionStep(y=f("AB"), x=f("A"), weight=HALF),
        SubmodularityStep(i_set=f("A"), j_set=f("BC"), weight=HALF),
        CompositionStep(y=f("ABC"), x=f("BC"), weight=HALF),
        SubmodularityStep(i_set=f("AB"), j_set=f("AC"), weight=HALF),
        CompositionStep(y=f("ABC"), x=f("AC"), weight=HALF),
    ]


class TestStepValidation:
    def test_decomposition_requires_nonempty_strict_x(self):
        with pytest.raises(ProofError):
            DecompositionStep(y=f("AB"), x=f(), weight=HALF)
        with pytest.raises(ProofError):
            DecompositionStep(y=f("AB"), x=f("AB"), weight=HALF)

    def test_positive_weights_required(self):
        with pytest.raises(ProofError):
            DecompositionStep(y=f("AB"), x=f("A"), weight=0)
        with pytest.raises(ProofError):
            CompositionStep(y=f("AB"), x=f("A"), weight=-1)
        with pytest.raises(ProofError):
            SubmodularityStep(i_set=f("AB"), j_set=f("AC"), weight=0)

    def test_submodularity_rejects_i_inside_j(self):
        with pytest.raises(ProofError):
            SubmodularityStep(i_set=f("A"), j_set=f("AB"), weight=1)

    def test_submodularity_source_and_target(self):
        step = SubmodularityStep(i_set=f("AB"), j_set=f("AC"), weight=1)
        assert step.source == ConditionalTerm(y=f("AB"), x=f("A"))
        assert step.target == ConditionalTerm(y=f("ABC"), x=f("AC"))

    def test_step_kind(self):
        assert step_kind(DecompositionStep(y=f("AB"), x=f("A"), weight=1)) == "decomposition"
        assert step_kind(CompositionStep(y=f("AB"), x=f("A"), weight=1)) == "composition"
        assert step_kind(SubmodularityStep(i_set=f("AB"), j_set=f("C"), weight=1)) == "submodularity"

    def test_describe_strings(self):
        assert "h(AB)" in DecompositionStep(y=f("AB"), x=f("A"), weight=1).describe()
        assert "->" in CompositionStep(y=f("AB"), x=f("A"), weight=1).describe()


class TestStepApplication:
    def test_decomposition_moves_weight(self):
        bag = TermBag({ConditionalTerm.unconditional(["A", "B"]): Fraction(1)})
        DecompositionStep(y=f("AB"), x=f("A"), weight=Fraction(1)).apply(bag)
        assert bag.weight(ConditionalTerm.unconditional(["A"])) == 1
        assert bag.weight(ConditionalTerm(y=f("AB"), x=f("A"))) == 1
        assert bag.weight(ConditionalTerm.unconditional(["A", "B"])) == 0

    def test_decomposition_insufficient_weight(self):
        bag = TermBag({ConditionalTerm.unconditional(["A", "B"]): HALF})
        with pytest.raises(ProofError):
            DecompositionStep(y=f("AB"), x=f("A"), weight=Fraction(1)).apply(bag)

    def test_composition_consumes_both_terms(self):
        bag = TermBag({
            ConditionalTerm.unconditional(["A"]): Fraction(1),
            ConditionalTerm(y=f("AB"), x=f("A")): Fraction(1),
        })
        CompositionStep(y=f("AB"), x=f("A"), weight=Fraction(1)).apply(bag)
        assert bag.weight(ConditionalTerm.unconditional(["A", "B"])) == 1
        assert len(bag) == 1

    def test_composition_missing_partner(self):
        bag = TermBag({ConditionalTerm(y=f("AB"), x=f("A")): Fraction(1)})
        with pytest.raises(ProofError):
            CompositionStep(y=f("AB"), x=f("A"), weight=Fraction(1)).apply(bag)

    def test_submodularity_moves_affiliated_weight(self):
        bag = TermBag({ConditionalTerm(y=f("AB"), x=f("A")): Fraction(1)})
        SubmodularityStep(i_set=f("AB"), j_set=f("AC"), weight=Fraction(1)).apply(bag)
        assert bag.weight(ConditionalTerm(y=f("ABC"), x=f("AC"))) == 1


class TestProofSequences:
    def test_triangle_proof_verifies(self):
        sequence = ProofSequence(triangle_inequality(), triangle_proof_steps())
        assert sequence.verify()
        assert sequence.final_weight_on_goal() == Fraction(1)

    def test_example1_table2_sequence_verifies(self):
        sequence = example1_proof_sequence()
        assert sequence.verify()
        assert len(sequence) == 9
        assert sequence.final_weight_on_goal() == Fraction(1)

    def test_truncated_sequence_fails(self):
        sequence = ProofSequence(triangle_inequality(), triangle_proof_steps()[:-1])
        assert not sequence.verify()

    def test_invalid_sequence_raises_in_run(self):
        steps = [CompositionStep(y=f("ABC"), x=f("AB"), weight=HALF)]
        sequence = ProofSequence(triangle_inequality(), steps)
        with pytest.raises(ProofError):
            sequence.run()
        assert not sequence.verify()

    def test_soundness_every_prefix_dominates_goal(self):
        """Applying proof steps never increases the bag's value on any
        polymatroid — the core soundness of the rules."""
        from repro.infotheory.set_functions import uniform_step_function

        inequality = triangle_inequality()
        steps = triangle_proof_steps()
        for threshold in (1, 2, 3):
            h = uniform_step_function(["A", "B", "C"], threshold)
            bag = inequality.term_bag()
            previous = bag.evaluate(h)
            for step in steps:
                step.apply(bag)
                current = bag.evaluate(h)
                assert current <= previous + 1e-9
                previous = current

    def test_describe_length_matches_steps(self):
        sequence = example1_proof_sequence()
        assert len(sequence.describe()) == len(sequence)

    def test_append(self):
        sequence = ProofSequence(triangle_inequality(), [])
        for step in triangle_proof_steps():
            sequence.append(step)
        assert sequence.verify()

    def test_higher_target_weight_fails(self):
        sequence = ProofSequence(triangle_inequality(), triangle_proof_steps())
        assert not sequence.verify(target_weight=2)
