"""Tests for the Example 1 / Table 2 reproduction."""

import math

import pytest

from repro.joins.generic_join import generic_join
from repro.panda.example1 import (
    example1_constraints,
    example1_database,
    example1_inequality,
    example1_proof_sequence,
    example1_query,
    example1_runtime_bound,
    example1_theta,
    observed_statistics,
    run_example1,
    table2_rows,
)


class TestExample1Objects:
    def test_query_shape(self):
        query = example1_query()
        assert query.variables == ("A", "B", "C", "D")
        assert [a.relation for a in query.atoms] == ["R", "S", "T", "W", "V"]

    def test_constraints_shape(self):
        dc = example1_constraints(10, 20, 30, 4, 5)
        assert len(dc) == 5
        cardinalities = dc.cardinality_constraints()
        assert len(cardinalities) == 3
        assert {c.guard for c in dc} == {"R", "S", "T", "W", "V"}

    def test_inequality_is_valid_shannon_flow(self):
        assert example1_inequality().is_valid()

    def test_proof_sequence_verifies(self):
        assert example1_proof_sequence().verify()

    def test_theta_and_bound_formulas(self):
        # With all statistics equal to n and degree bounds d:
        n, d = 100, 4
        assert example1_theta(n, n, n, d, d) == pytest.approx(math.sqrt(n * d / d))
        assert example1_runtime_bound(n, n, n, d, d) == pytest.approx(
            math.sqrt(n ** 3 * d * d))

    def test_database_satisfies_constraints(self):
        database = example1_database(scale=120, seed=9)
        stats = observed_statistics(database)
        dc = example1_constraints(
            stats["N_AB"], stats["N_BC"], stats["N_CD"],
            max(1, stats["N_ACD|AC"]), max(1, stats["N_ABD|BD"]),
        )
        assert dc.validate(database)


class TestExample1Execution:
    def test_run_matches_generic_join(self):
        run = run_example1(scale=120, seed=5)
        assert run.matches_generic_join
        assert len(run.result.output) == len(
            generic_join(example1_query(), example1_database(scale=120, seed=5)))

    def test_intermediates_within_bound(self):
        for seed in (0, 1):
            run = run_example1(scale=150, seed=seed)
            assert run.result.max_intermediate <= run.runtime_bound + 1e-9

    def test_two_output_branches(self):
        run = run_example1(scale=100, seed=2)
        assert len(run.result.branch_outputs) == 2

    def test_statistics_reported(self):
        run = run_example1(scale=100, seed=3)
        assert set(run.statistics.keys()) == {
            "N_AB", "N_BC", "N_CD", "N_ACD|AC", "N_ABD|BD"}


class TestTable2:
    def test_rows_match_paper_structure(self):
        rows = table2_rows()
        assert len(rows) == 9
        assert [row["name"] for row in rows] == [
            "decomposition", "submodularity", "composition",
            "submodularity", "composition",
            "submodularity", "composition",
            "submodularity", "composition",
        ]
        assert [row["operation"] for row in rows] == [
            "partition", "NOOP", "join", "NOOP", "join", "NOOP", "join", "NOOP", "join",
        ]

    def test_rows_mention_the_paper_actions(self):
        rows = table2_rows()
        actions = " ".join(row["action"] for row in rows)
        assert "S_heavy" in actions
        assert "S_light" in actions
        assert "output_1" in actions and "output_2" in actions

    def test_rows_with_run_include_measurements(self):
        run = run_example1(scale=80, seed=1)
        rows = table2_rows(run)
        assert all("measured" in row for row in rows)
        assert "partition" in rows[0]["measured"]
