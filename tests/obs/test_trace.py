"""Tests for the span tracer and its NDJSON export."""

import json
import time

from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestSpans:
    def test_span_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("parse", from_text=True):
            pass
        assert len(tracer) == 1
        record = tracer.spans[0]
        assert record.name == "parse"
        assert record.parent_id is None
        assert record.attributes == {"from_text": True}
        assert record.duration_ms >= 0.0

    def test_nested_spans_link_to_parent(self):
        tracer = Tracer()
        with tracer.span("query") as outer:
            with tracer.span("execute"):
                pass
        execute, query = tracer.spans  # completion order: child first
        assert query.name == "query"
        assert execute.parent_id == outer.span_id
        assert tracer.children(query) == [execute]

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("parse"):
                pass
            with tracer.span("execute"):
                pass
        query = tracer.find("query")[0]
        assert {s.name for s in tracer.children(query)} == {"parse", "execute"}

    def test_set_attaches_attributes_late(self):
        tracer = Tracer()
        with tracer.span("execute") as span:
            span.set(rows=42).set(strategy="generic")
        assert tracer.spans[0].attributes == {"rows": 42,
                                              "strategy": "generic"}

    def test_record_with_explicit_timestamps(self):
        tracer = Tracer()
        start = time.perf_counter()
        end = start + 0.25
        record = tracer.record("deliver", start, end, rows=3)
        assert abs(record.duration_ms - 250.0) < 1e-6
        assert record.attributes == {"rows": 3}
        assert tracer.spans == [record]

    def test_start_is_relative_to_tracer_epoch(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        assert 0.0 <= tracer.spans[0].start < 60.0

    def test_find_and_iter(self):
        tracer = Tracer()
        with tracer.span("parse"):
            pass
        with tracer.span("parse"):
            pass
        assert len(tracer.find("parse")) == 2
        assert len(tracer.find("missing")) == 0
        assert [s.name for s in tracer] == ["parse", "parse"]

    def test_reset_drops_spans_but_not_ids(self):
        tracer = Tracer()
        with tracer.span("query") as first:
            pass
        tracer.reset()
        assert len(tracer) == 0
        with tracer.span("query") as second:
            pass
        assert second.span_id > first.span_id


class TestExport:
    def test_export_ndjson_to_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query", mode="auto"):
            with tracer.span("parse"):
                pass
        path = tmp_path / "trace.ndjson"
        assert tracer.export_ndjson(str(path)) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        by_name = {r["name"]: r for r in records}
        assert by_name["parse"]["parent_id"] == by_name["query"]["span_id"]
        assert by_name["query"]["attributes"] == {"mode": "auto"}

    def test_to_ndjson_round_trips(self):
        tracer = Tracer()
        with tracer.span("execute", rows=7):
            pass
        record = json.loads(tracer.to_ndjson())
        assert record["name"] == "execute"
        assert record["attributes"]["rows"] == 7


class TestNullTracer:
    def test_disabled_and_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("query", mode="auto") as span:
            span.set(rows=1)
        assert len(tracer) == 0
        assert list(tracer) == []
        assert tracer.to_ndjson() == ""
        assert tracer.record("x", 0.0, 1.0) is None
        tracer.reset()

    def test_null_export_writes_nothing(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        assert NULL_TRACER.export_ndjson(str(path)) == 0

    def test_real_tracer_is_enabled(self):
        assert Tracer.enabled
        assert not NullTracer.enabled
