"""Tests for the metrics registry and its exposition format."""

import json

import pytest

from repro.obs import MetricsRegistry, parse_exposition


class TestCounter:
    def test_unlabelled_counter(self):
        registry = MetricsRegistry()
        queries = registry.counter("queries_total", "Queries served")
        queries.inc()
        queries.inc(4)
        assert queries.value() == 5
        assert registry.as_dict()["queries_total"] == 5

    def test_labelled_counter_makes_child_series(self):
        registry = MetricsRegistry()
        lookups = registry.counter("lookups_total", "Lookups",
                                   label_names=("outcome",))
        lookups.inc(outcome="hit")
        lookups.inc(outcome="hit")
        lookups.inc(outcome="miss")
        assert lookups.value(outcome="hit") == 2
        assert lookups.value(outcome="miss") == 1
        assert lookups.value(outcome="never_seen") == 0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_wrong_labels_raise(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", label_names=("kind",))
        with pytest.raises(ValueError):
            counter.inc(flavor="a")
        with pytest.raises(ValueError):
            counter.inc()


class TestGauge:
    def test_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("entries", "Cache entries")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value() == 7

    def test_labelled_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", label_names=("queue",))
        gauge.set(2, queue="a")
        gauge.set(5, queue="b")
        assert gauge.value(queue="b") == 5


class TestHistogram:
    def test_observe_buckets_cumulatively(self):
        registry = MetricsRegistry()
        hist = registry.histogram("seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are upper-inclusive: observe(le) counts in le.
        registry = MetricsRegistry()
        hist = registry.histogram("seconds", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.snapshot()["buckets"]["1"] == 1

    def test_empty_bucket_list_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "A")
        second = registry.counter("a_total")
        assert first is second
        assert "a_total" in registry

    def test_redeclare_with_different_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_redeclare_with_different_labels_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", label_names=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", label_names=("b",))

    def test_to_json_is_valid_json(self):
        registry = MetricsRegistry()
        registry.counter("queries_total").inc(3)
        registry.histogram("seconds", buckets=(1.0,)).observe(0.5)
        decoded = json.loads(registry.to_json())
        assert decoded["queries_total"] == 3
        assert decoded["seconds"]["count"] == 1


class TestExposition:
    def test_counter_exposition_has_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", "Queries served").inc(2)
        text = registry.exposition()
        assert "# HELP queries_total Queries served" in text
        assert "# TYPE queries_total counter" in text
        assert "queries_total 2" in text

    def test_unlabelled_untouched_counter_exposes_zero(self):
        registry = MetricsRegistry()
        registry.counter("queries_total")
        assert "queries_total 0" in registry.exposition()

    def test_histogram_exposition_shape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("delay_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = registry.exposition()
        assert 'delay_seconds_bucket{le="0.1"} 1' in text
        assert 'delay_seconds_bucket{le="1"} 2' in text
        assert 'delay_seconds_bucket{le="+Inf"} 2' in text
        assert "delay_seconds_count 2" in text

    def test_exposition_round_trips_through_parser(self):
        registry = MetricsRegistry()
        lookups = registry.counter("lookups_total", "Lookups",
                                   label_names=("outcome",))
        lookups.inc(3, outcome="hit")
        lookups.inc(outcome="miss")
        registry.gauge("entries").set(12)
        hist = registry.histogram("seconds", buckets=(1.0,))
        hist.observe(0.25)
        hist.observe(2.0)

        parsed = parse_exposition(registry.exposition())
        assert parsed["lookups_total"]['{outcome="hit"}'] == 3
        assert parsed["lookups_total"]['{outcome="miss"}'] == 1
        assert parsed["entries"][""] == 12
        assert parsed["seconds_bucket"]['{le="1"}'] == 1
        assert parsed["seconds_bucket"]['{le="+Inf"}'] == 2
        assert parsed["seconds_count"][""] == 2
        assert parsed["seconds_sum"][""] == pytest.approx(2.25)

    def test_empty_registry_exposition_is_empty(self):
        assert MetricsRegistry().exposition() == ""
