"""Tests for EXPLAIN ANALYZE: profiling and cost-model calibration."""

import pytest

from repro.engine import Engine
from repro.obs import ProfileReport, StrategyProfile, profile_query


@pytest.fixture
def engine(small_triangle_instance):
    _query, database, _expected = small_triangle_instance
    return Engine(database)


@pytest.fixture
def triangle(small_triangle_instance):
    query, _database, _expected = small_triangle_instance
    return query


class TestProfileQuery:
    def test_profiles_every_priced_strategy(self, engine, triangle):
        report = profile_query(engine, triangle)
        strategies = {p.strategy for p in report.profiles}
        assert {"naive", "binary", "generic", "leapfrog"} <= strategies
        assert all(p.predicted is not None for p in report.profiles)
        assert all(p.rows == 4 for p in report.profiles)

    def test_calibration_is_actual_over_predicted(self, engine, triangle):
        report = profile_query(engine, triangle)
        for profile in report.profiles:
            assert profile.calibration == pytest.approx(
                profile.actual / profile.predicted)
            # The envelope is a worst-case bound estimate; on this tiny
            # instance no strategy should exceed it wildly.
            assert profile.calibration < 100

    def test_dispatched_strategy_is_profiled(self, engine, triangle):
        report = profile_query(engine, triangle)
        assert report.profile_for(report.dispatched) is not None
        assert report.profile_for("no_such_strategy") is None

    def test_best_strategy_has_minimal_operations(self, engine, triangle):
        report = profile_query(engine, triangle)
        best = report.profile_for(report.best_strategy)
        assert best.actual == min(p.actual for p in report.profiles)
        assert report.dispatch_optimal == (
            report.profile_for(report.dispatched).actual == best.actual)

    def test_forced_mode_profiles_one_strategy_unpriced(self, engine,
                                                        triangle):
        report = profile_query(engine, triangle, mode="generic")
        assert [p.strategy for p in report.profiles] == ["generic"]
        assert report.profiles[0].predicted is None
        assert report.profiles[0].calibration is None

    def test_breakdown_attributes_search_nodes(self, engine, triangle):
        report = profile_query(engine, triangle, mode="generic")
        breakdown = report.profiles[0].breakdown
        per_variable = {label: count for label, count in breakdown.items()
                        if label.startswith("search_nodes[")}
        assert per_variable
        total = report.profiles[0].operations["search_nodes"]
        assert sum(per_variable.values()) == total

    def test_profiling_bypasses_result_cache(self, engine, triangle):
        engine.execute(triangle)  # seed the result cache
        report = profile_query(engine, triangle)
        assert all(p.actual > 0 for p in report.profiles)


class TestEngineSurface:
    def test_engine_profile_delegates(self, engine, triangle):
        report = engine.profile(triangle)
        assert isinstance(report, ProfileReport)
        assert report.profiles

    def test_explain_analyze_attaches_report(self, engine, triangle):
        explanation = engine.explain(triangle, analyze=True)
        assert isinstance(explanation.analysis, ProfileReport)
        rendered = explanation.render()
        assert "calibration" in rendered
        assert explanation.strategy == explanation.analysis.dispatched

    def test_explain_without_analyze_has_no_report(self, engine, triangle):
        assert engine.explain(triangle).analysis is None


class TestRender:
    def test_render_lists_strategies_and_verdict(self, engine, triangle):
        report = engine.profile(triangle)
        rendered = report.render()
        assert "dispatched:" in rendered
        for profile in report.profiles:
            assert profile.strategy in rendered
        assert ("empirically best" in rendered
                or "did fewer operations" in rendered)
        assert str(report) == rendered

    def test_render_marks_dispatched_row(self, engine, triangle):
        report = engine.profile(triangle)
        marked = [line for line in report.render().splitlines()
                  if line.endswith(" *")]
        assert len(marked) == 1
        assert report.dispatched in marked[0]

    def test_strategy_profile_actual_property(self):
        profile = StrategyProfile(strategy="generic", predicted=10.0,
                                  operations={"total": 7})
        assert profile.actual == 7
        assert StrategyProfile("x", None, {}).actual == 0
