"""Tests for Leapfrog Triejoin and the leapfrog intersection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.joins.leapfrog import LeapfrogIterator, leapfrog_intersect, leapfrog_triejoin
from repro.joins.naive import nested_loop_join
from repro.query.atoms import triangle_query
from repro.datagen.loomis_whitney import loomis_whitney_random_instance
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestLeapfrogIterator:
    def test_linear_iteration(self):
        it = LeapfrogIterator([1, 3, 5])
        assert it.key() == 1
        it.next()
        assert it.key() == 3
        it.next()
        it.next()
        assert it.at_end()

    def test_seek(self):
        it = LeapfrogIterator([1, 3, 5, 9])
        it.seek(4)
        assert it.key() == 5
        it.seek(9)
        assert it.key() == 9
        it.seek(10)
        assert it.at_end()


class TestLeapfrogIntersect:
    def test_basic(self):
        result = leapfrog_intersect([[1, 2, 3, 7, 9], [2, 3, 4, 9], [0, 2, 3, 9, 11]])
        assert result == [2, 3, 9]

    def test_disjoint(self):
        assert leapfrog_intersect([[1, 3], [2, 4]]) == []

    def test_empty_list_short_circuits(self):
        assert leapfrog_intersect([[1, 2], []]) == []
        assert leapfrog_intersect([]) == []

    def test_single_list(self):
        assert leapfrog_intersect([[1, 5, 9]]) == [1, 5, 9]

    def test_identical_lists(self):
        assert leapfrog_intersect([[1, 2, 3], [1, 2, 3]]) == [1, 2, 3]

    def test_counter_counts_seeks(self):
        counter = OperationCounter()
        leapfrog_intersect([[1, 2, 3], [3, 4, 5]], counter=counter)
        assert counter.seeks > 0

    @given(st.lists(st.sets(st.integers(0, 30), max_size=20), min_size=2, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_matches_set_intersection(self, value_sets):
        sorted_lists = [sorted(s) for s in value_sets]
        expected = set.intersection(*[set(s) for s in value_sets]) if value_sets else set()
        assert leapfrog_intersect(sorted_lists) == sorted(expected)


class TestLeapfrogTriejoin:
    def test_small_triangle(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        assert leapfrog_triejoin(query, database).tuples == frozenset(expected)

    def test_matches_generic_join_on_tight_instance(self, tight_triangle_100):
        query, database = tight_triangle_100
        assert leapfrog_triejoin(query, database) == generic_join(query, database)

    def test_matches_generic_join_on_skew_instance(self, skew_triangle_100):
        query, database = skew_triangle_100
        assert leapfrog_triejoin(query, database) == generic_join(query, database)

    def test_lw_instance(self):
        query, database = loomis_whitney_random_instance(4, 30, seed=3)
        assert leapfrog_triejoin(query, database) == nested_loop_join(query, database)

    def test_explicit_order(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        out = leapfrog_triejoin(query, database, order=("C", "B", "A"))
        assert out.tuples == frozenset(expected)

    def test_counter_counts_seeks(self, tight_triangle_100):
        query, database = tight_triangle_100
        counter = OperationCounter()
        leapfrog_triejoin(query, database, counter=counter)
        assert counter.seeks > 0
        assert counter.tuples_emitted > 0

    pairs = st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12)

    @given(pairs, pairs, pairs)
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_naive_on_random_triangles(self, r, s, t):
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), r),
            Relation("S", ("B", "C"), s),
            Relation("T", ("A", "C"), t),
        ])
        assert leapfrog_triejoin(query, database) == nested_loop_join(query, database)
