"""Component-factorized elimination: exact FAQ bound on decomposable tails.

After the separator is bound, the residual tail of an eliminating WCOJ run
may split into connected components of the residual hypergraph —
conditionally-independent sub-problems.  The factorized eliminator folds
each component with its own memo and combines the values with the semiring
product; these tests pin that the results are *bit-identical* to the
monolithic fold (and to every other executor) while the search shrinks from
``N^{tail width}`` to ``N^{max component width}``.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import Engine
from repro.joins.generic_join import generic_join_stream
from repro.joins.instrumentation import OperationCounter
from repro.joins.leapfrog import leapfrog_stream
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.builder import Query
from repro.query.semiring import Aggregate, Semiring, register_semiring
from repro.query.variable_order import aggregate_elimination_order
from repro.relational.database import Database
from repro.relational.relation import Relation

STREAMS = [generic_join_stream, leapfrog_stream]


def star_database(seed: int = 0, groups: int = 12, fanout: int = 8,
                  domain: int = 10) -> Database:
    """R1(A,B1), R2(A,B2), R3(A,B3): the tail factorizes per arm."""
    rng = random.Random(seed)
    rels = []
    for i, col in enumerate(("b", "c", "d")):
        rows = {(a, rng.randrange(domain))
                for a in range(groups) for _ in range(fanout)}
        rels.append(Relation(f"R{i + 1}", ("a", col), rows))
    return Database(rels)


def star_query() -> ConjunctiveQuery:
    return ConjunctiveQuery([Atom("R1", ("A", "B1")),
                             Atom("R2", ("A", "B2")),
                             Atom("R3", ("A", "B3"))])


def both_modes(stream, query, database, **kwargs):
    """(factorized rows, monolithic rows, factorized nodes, mono nodes)."""
    fact_counter, mono_counter = OperationCounter(), OperationCounter()
    fact = sorted(stream(query, database, counter=fact_counter, **kwargs))
    mono = sorted(stream(query, database, counter=mono_counter,
                         factorize=False, **kwargs))
    return fact, mono, fact_counter.search_nodes, mono_counter.search_nodes


class TestBitIdenticalResults:
    @pytest.mark.parametrize("stream", STREAMS)
    @pytest.mark.parametrize("kind,var", [("count", None), ("sum", "B1"),
                                          ("min", "B2"), ("max", "B3"),
                                          ("avg", "B1")])
    def test_star_group_by_every_builtin_aggregate(self, stream, kind, var):
        db = star_database()
        aggs = [Aggregate(kind, var, "x")]
        order = ("A", "B1", "B2", "B3")
        fact, mono, _f, _m = both_modes(stream, star_query(), db,
                                        order=order, head=("A",),
                                        aggregates=aggs)
        assert fact == mono

    @pytest.mark.parametrize("stream", STREAMS)
    def test_multi_aggregate_heads_split_across_components(self, stream):
        db = star_database(seed=3)
        aggs = [Aggregate("sum", "B1", "s"), Aggregate("min", "B2", "m"),
                Aggregate("count", None, "n"), Aggregate("avg", "B3", "a")]
        fact, mono, fact_nodes, mono_nodes = both_modes(
            stream, star_query(), db, order=("A", "B1", "B2", "B3"),
            head=("A",), aggregates=aggs)
        assert fact == mono
        assert fact_nodes < mono_nodes

    @pytest.mark.parametrize("stream", STREAMS)
    def test_non_decomposable_tail_unchanged(self, stream):
        # Chain tail: B and C share the S atom, a single component — the
        # factorized path must fall through to the identical monolithic
        # fold, node counts included.
        rng = random.Random(5)
        db = Database([
            Relation("R", ("a", "b"),
                     {(rng.randrange(6), rng.randrange(6))
                      for _ in range(25)}),
            Relation("S", ("b", "c"),
                     {(rng.randrange(6), rng.randrange(6))
                      for _ in range(25)}),
        ])
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
        fact, mono, fact_nodes, mono_nodes = both_modes(
            stream, q, db, order=("A", "B", "C"), head=("A",),
            aggregates=[Aggregate("count", None, "n")])
        assert fact == mono
        assert fact_nodes == mono_nodes

    @pytest.mark.parametrize("stream", STREAMS)
    def test_projection_existential_tail_factorizes(self, stream):
        db = star_database(seed=7)
        fact, mono, _f, _m = both_modes(stream, star_query(), db,
                                        order=("A", "B1", "B2", "B3"),
                                        head=("A",))
        assert fact == mono

    @pytest.mark.parametrize("stream", STREAMS)
    def test_ranked_enumeration_with_decomposable_existential_tail(
            self, stream):
        # ORDER BY the group variable: the ranked frontier's existential
        # checks and best-suffix bounds run through the factorized
        # eliminators; prefixes must match the monolithic run exactly.
        db = star_database(seed=11, groups=8, fanout=4)
        q = star_query()
        kwargs = dict(order=("A", "B1", "B2", "B3"), head=("A",),
                      ranked=(("A", True),))
        fact = list(stream(q, db, **kwargs))
        mono = list(stream(q, db, factorize=False, **kwargs))
        assert fact == mono
        assert fact == sorted(fact, reverse=True)

    @pytest.mark.parametrize("stream", STREAMS)
    def test_ranked_keys_spanning_components(self, stream):
        # Sort keys live in *different* arms of a product-shaped join:
        # the per-component best-suffix vectors must recompose exactly.
        rng = random.Random(13)
        db = Database([
            Relation("R", ("a", "b"),
                     {(rng.randrange(4), rng.randrange(9))
                      for _ in range(14)}),
            Relation("S", ("a", "c"),
                     {(rng.randrange(4), rng.randrange(9))
                      for _ in range(14)}),
        ])
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("A", "C"))])
        kwargs = dict(order=("B", "C", "A"), head=("B", "C"),
                      ranked=(("B", False), ("C", True)))
        fact = list(stream(q, db, **kwargs))
        mono = list(stream(q, db, factorize=False, **kwargs))
        assert fact == mono

    @pytest.mark.parametrize("stream", STREAMS)
    def test_selection_glues_components_together(self, stream):
        # B1 < B2 couples the two arms: treating them as independent
        # would mis-count, so the splitter must merge them — and the
        # answers must stay identical to the monolithic fold.
        db = star_database(seed=17)
        sel = Query.coerce(
            "Q(A, COUNT(*)) :- R1(A,B1), R2(A,B2), R3(A,B3), B1 < B2")
        fact, mono, _f, _m = both_modes(
            stream, sel.core, db, order=("A", "B1", "B2", "B3"),
            head=("A",), aggregates=sel.aggregates,
            selections=sel.all_selections)
        assert fact == mono
        # Sanity: the result actually reflects the selection.
        plain = sorted(stream(sel.core, db, order=("A", "B1", "B2", "B3"),
                              head=("A",), aggregates=sel.aggregates))
        assert fact != plain

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_queries_agree_across_engines_and_modes(self, seed):
        """Random decomposable/non-decomposable instances: the engine's
        factorized answers match every executor and the monolithic
        stream, bit for bit."""
        rng = random.Random(seed)
        shapes = {
            "star": ([("R1", ("A", "B1")), ("R2", ("A", "B2")),
                      ("R3", ("A", "B3"))], ("A", "B1", "B2", "B3")),
            "chain": ([("R1", ("A", "B1")), ("R2", ("B1", "B2")),
                       ("R3", ("B2", "B3"))], ("A", "B1", "B2", "B3")),
            "forest": ([("R1", ("A", "B1")), ("R2", ("B1", "B2")),
                        ("R3", ("A", "B3"))], ("A", "B1", "B2", "B3")),
        }
        atoms_spec, _vars = shapes[rng.choice(sorted(shapes))]
        db = Database([
            Relation(name, tuple(v.lower() for v in vs),
                     {tuple(rng.randrange(7) for _ in vs)
                      for _ in range(30)})
            for name, vs in atoms_spec
        ])
        q = ConjunctiveQuery([Atom(n, vs) for n, vs in atoms_spec])
        aggs = (Aggregate("count", None, "n"), Aggregate("sum", "B1", "s"))
        order, _w = aggregate_elimination_order(q, group=("A",))
        expected = sorted(generic_join_stream(
            q, db, order=order, head=("A",), aggregates=aggs,
            factorize=False))
        for stream in STREAMS:
            got = sorted(stream(q, db, order=order, head=("A",),
                                aggregates=aggs))
            assert got == expected, stream.__name__
        engine = Engine(database=db, cache_results=False)
        text = "Q(A, COUNT(*), SUM(B1) AS s) :- " + ", ".join(
            f"{n}({', '.join(vs)})" for n, vs in atoms_spec)
        for mode in ("generic", "leapfrog", "yannakakis", "binary", "naive"):
            result = engine.execute(text, mode=mode)
            assert sorted(result.tuples) == expected, mode


class TestAsymptotics:
    def test_star_sum_beats_monolithic_elimination(self):
        # SUM(B1) threads B1 through every later separator of the
        # monolithic fold (the memo key of each other arm grows by the
        # aggregated variable); per-component folds drop that factor.
        db = star_database(seed=1, groups=20, fanout=25, domain=30)
        aggs = [Aggregate("sum", "B1", "s")]
        fact, mono, fact_nodes, mono_nodes = both_modes(
            generic_join_stream, star_query(), db,
            order=("A", "B1", "B2", "B3"), head=("A",), aggregates=aggs)
        assert fact == mono
        assert mono_nodes >= 10 * fact_nodes

    def test_component_memo_is_shared_across_groups(self):
        # A product-shaped tail independent of the group variable: each
        # component's fold is computed once and memo-served to every
        # group.
        db = Database([
            Relation("R", ("a", "b"), [(a, b) for a in range(15)
                                       for b in range(3)]),
            Relation("S", ("c", "d"), [(c, d) for c in range(12)
                                       for d in range(2)]),
        ])
        q = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("C", "D"))])
        counter = OperationCounter()
        rows = sorted(generic_join_stream(
            q, db, order=("A", "B", "C", "D"), head=("A",),
            aggregates=[Aggregate("count", None, "n")], counter=counter))
        assert rows == [(a, 3 * 24) for a in range(15)]
        # 1 root + 15 group nodes + one {B}-fold per group (separator A)
        # + a single shared {C,D} fold (1 + 12 nodes).
        assert counter.search_nodes <= 1 + 15 + 15 + 13


class TestFallbacks:
    def test_plus_only_semiring_falls_back_to_monolithic(self):
        # A registered aggregate without ``times`` cannot combine
        # component values; the eliminator must quietly keep the
        # monolithic fold and still be correct.
        from repro.query.semiring import SEMIRINGS

        name = "listagg_test"
        register_semiring(Semiring(
            name, zero=(), plus=lambda a, b: tuple(sorted(a + b)),
            lift=lambda v: (v,)))
        try:
            db = star_database(seed=19, groups=4, fanout=3, domain=4)
            aggs = [Aggregate(name, "B2", "xs")]
            got = sorted(generic_join_stream(
                star_query(), db, order=("A", "B1", "B2", "B3"),
                head=("A",), aggregates=aggs))
            # Distinct-assignment semantics: each distinct B2 of a
            # surviving group appears once per distinct (B1, B3) pair.
            arms = {col: {} for col in ("R1", "R2", "R3")}
            for rel in arms:
                for a, v in db.get(rel).tuples:
                    arms[rel].setdefault(a, set()).add(v)
            for a, xs in got:
                multiplicity = (len(arms["R1"][a]) * len(arms["R3"][a]))
                expected = tuple(sorted(
                    b2 for b2 in arms["R2"][a]
                    for _ in range(multiplicity)))
                assert tuple(xs) == expected
        finally:
            SEMIRINGS.pop(name, None)

    def test_factorize_flag_is_pure_ablation(self):
        db = star_database(seed=23)
        q = star_query()
        for head in (("A",), ("A", "B1")):
            fact = sorted(generic_join_stream(q, db,
                                              order=("A", "B1", "B2", "B3"),
                                              head=head))
            mono = sorted(generic_join_stream(q, db,
                                              order=("A", "B1", "B2", "B3"),
                                              head=head, factorize=False))
            assert fact == mono


class TestPlannerExecutorAgreement:
    """The planner, the executor, and explain() must split identically."""

    def test_selection_glue_is_shared_by_planner_and_executor(self):
        spec = Query.coerce("Q(A, COUNT(*)) :- R1(A,B), R2(A,C), B != C")
        hg = spec.core.hypergraph()
        couplings = [sel.variables for sel in spec.all_selections]
        glued = hg.residual_components(("A",), couplings=couplings)
        assert glued == (frozenset({"B", "C"}),)
        # Without the coupling the arms would (wrongly, for this query)
        # look independent.
        assert len(hg.residual_components(("A",))) == 2
        from repro.query.variable_order import aggregate_elimination_order
        order, _w = aggregate_elimination_order(
            spec.core, group=("A",), selections=spec.all_selections)
        assert order[0] == "A"

    def test_explain_reports_no_split_for_plus_only_semirings(self):
        from repro.query.semiring import SEMIRINGS
        name = "firstagg_test"
        register_semiring(Semiring(
            name, None, lambda a, b: b if a is None else a,
            lambda v: v))
        try:
            db = star_database(seed=29, groups=4, fanout=3)
            engine = Engine(database=db, cache_results=False)
            text = (f"Q(A, {name.upper()}(B1) AS f) "
                    ":- R1(A,B1), R2(A,B2), R3(A,B3)")
            explanation = engine.explain(text, mode="generic",
                                         aggregate_mode="recursion")
            assert not any("factorizes" in line
                           for line in explanation.elimination)
        finally:
            SEMIRINGS.pop(name, None)

    def test_explain_reports_the_split_for_product_semirings(self):
        db = star_database(seed=31, groups=4, fanout=3)
        engine = Engine(database=db, cache_results=False)
        explanation = engine.explain(
            "Q(A, SUM(B1) AS s) :- R1(A,B1), R2(A,B2), R3(A,B3)",
            mode="generic", aggregate_mode="recursion")
        assert any("factorizes into 3 independent components" in line
                   for line in explanation.elimination)
