"""Tests for the strategy chooser and the naive join oracle."""

import pytest

from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.joins.naive import nested_loop_join
from repro.joins.optimizer import choose_strategy, evaluate
from repro.query.atoms import Atom, ConjunctiveQuery, path_query
from repro.relational.database import Database
from repro.relational.relation import Relation


@pytest.fixture
def path_db():
    query = path_query(2)
    database = Database([
        Relation("E_1", ("A", "B"), [(1, 2), (2, 3)]),
        Relation("E_2", ("A", "B"), [(2, 4), (3, 4)]),
    ])
    return query, database


class TestChooseStrategy:
    def test_cyclic_query_uses_wcoj(self, tight_triangle_100):
        query, database = tight_triangle_100
        choice = choose_strategy(query, database)
        assert choice.strategy == "wcoj"
        assert not choice.acyclic
        assert choice.agm.bound > 0

    def test_acyclic_query_uses_binary(self, path_db):
        query, database = path_db
        choice = choose_strategy(query, database)
        assert choice.strategy == "binary"
        assert choice.acyclic


class TestEvaluate:
    def test_auto_strategy_correct_on_triangle(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        assert evaluate(query, database).tuples == frozenset(expected)

    def test_auto_strategy_correct_on_path(self, path_db):
        query, database = path_db
        assert evaluate(query, database) == nested_loop_join(query, database)

    def test_forced_strategies_agree(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        wcoj = evaluate(query, database, strategy="wcoj")
        binary = evaluate(query, database, strategy="binary")
        assert wcoj == binary

    def test_unknown_strategy_rejected(self, path_db):
        query, database = path_db
        with pytest.raises(ValueError):
            evaluate(query, database, strategy="quantum")

    def test_counter_passed_through(self, tight_triangle_100):
        query, database = tight_triangle_100
        counter = OperationCounter()
        evaluate(query, database, strategy="wcoj", counter=counter)
        assert counter.total() > 0


class TestNaiveOracle:
    def test_naive_handles_projection_head(self):
        query = ConjunctiveQuery([Atom("R", ("A", "B"))], head=("B",))
        database = Database([Relation("R", ("A", "B"), [(1, 2), (3, 2)])])
        output = nested_loop_join(query, database)
        assert output.attributes == ("B",)
        assert output.tuples == frozenset({(2,)})

    def test_naive_counter(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        counter = OperationCounter()
        out = nested_loop_join(query, database, counter=counter)
        assert counter.tuples_emitted == len(out)
        assert counter.tuples_scanned > 0

    def test_naive_matches_generic_join(self, tight_triangle_100):
        query, database = tight_triangle_100
        assert nested_loop_join(query, database) == generic_join(query, database)
