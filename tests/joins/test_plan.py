"""Tests for binary join plan trees and the plan executor."""

import pytest

from repro.errors import QueryError
from repro.joins.naive import nested_loop_join
from repro.joins.plan import PlanJoin, PlanLeaf, execute_plan, left_deep_plan
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.relation import Relation


@pytest.fixture
def chain_db():
    query = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C")),
                              Atom("T", ("C", "D"))])
    database = Database([
        Relation("R", ("A", "B"), [(1, 2), (2, 2), (3, 4)]),
        Relation("S", ("B", "C"), [(2, 5), (4, 6)]),
        Relation("T", ("C", "D"), [(5, 7), (6, 8), (9, 9)]),
    ])
    return query, database


class TestPlanStructure:
    def test_left_deep_plan_shape(self):
        plan = left_deep_plan(["R", "S", "T"])
        assert isinstance(plan, PlanJoin)
        assert isinstance(plan.left, PlanJoin)
        assert isinstance(plan.right, PlanLeaf)
        assert plan.atoms() == ("R", "S", "T")

    def test_left_deep_plan_rejects_empty(self):
        with pytest.raises(QueryError):
            left_deep_plan([])

    def test_str(self):
        plan = PlanJoin(PlanLeaf("R"), PlanLeaf("S"), project_to=("A",))
        assert "JOIN" in str(plan)
        assert "pi[A]" in str(plan)


class TestExecutePlan:
    def test_chain_plan_matches_naive(self, chain_db):
        query, database = chain_db
        plan = left_deep_plan(["R", "S", "T"])
        execution = execute_plan(plan, query, database)
        assert execution.result == nested_loop_join(query, database)

    def test_triangle_plan_matches_naive(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        plan = left_deep_plan(["R", "S", "T"])
        execution = execute_plan(plan, query, database)
        assert execution.result.tuples == frozenset(expected)

    def test_intermediate_sizes_recorded(self, chain_db):
        query, database = chain_db
        plan = left_deep_plan(["R", "S", "T"])
        execution = execute_plan(plan, query, database)
        # Two inner joins, the last one is the output, so one intermediate.
        assert len(execution.intermediate_sizes) == 1
        assert execution.max_intermediate == execution.intermediate_sizes[0]
        assert execution.total_intermediate == sum(execution.intermediate_sizes)

    def test_bushy_plan(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        plan = PlanJoin(PlanJoin(PlanLeaf("R"), PlanLeaf("S")), PlanLeaf("T"))
        bushy = PlanJoin(PlanLeaf("T"), PlanJoin(PlanLeaf("S"), PlanLeaf("R")))
        assert execute_plan(plan, query, database).result.tuples == frozenset(expected)
        assert execute_plan(bushy, query, database).result.tuples == frozenset(expected)

    def test_join_project_plan(self, chain_db):
        query, database = chain_db
        # Project away nothing harmful: keep all head variables.
        plan = PlanJoin(
            PlanJoin(PlanLeaf("R"), PlanLeaf("S"), project_to=("A", "B", "C")),
            PlanLeaf("T"),
        )
        execution = execute_plan(plan, query, database)
        assert execution.result == nested_loop_join(query, database)

    def test_plan_missing_atom_rejected(self, chain_db):
        query, database = chain_db
        plan = left_deep_plan(["R", "S"])
        with pytest.raises(QueryError):
            execute_plan(plan, query, database)

    def test_plan_dropping_head_variable_rejected(self, chain_db):
        query, database = chain_db
        plan = PlanJoin(
            PlanJoin(PlanLeaf("R"), PlanLeaf("S"), project_to=("A", "C")),
            PlanLeaf("T"),
        )
        with pytest.raises(QueryError):
            execute_plan(plan, query, database)

    def test_counter_accumulates(self, chain_db):
        query, database = chain_db
        plan = left_deep_plan(["R", "S", "T"])
        execution = execute_plan(plan, query, database)
        assert execution.counter.hash_inserts > 0
        assert execution.counter.tuples_scanned > 0
