"""Cross-atom comparison pushdown in the materializing executors.

Predicates spanning atoms (``A < D`` with A and D in different relations)
used to be applied to the finished join output; binary plans and
Yannakakis now fire them at the first pairwise join that binds both sides,
shrinking every later intermediate.  These tests pin both the semantics
(identical results to post-hoc filtering) and the work reduction
(strictly smaller intermediates on instances where the predicate is
selective).
"""

import pytest

from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.joins.naive import nested_loop_stream
from repro.joins.plan import execute_plan, left_deep_plan
from repro.joins.yannakakis import yannakakis
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.terms import comparison
from repro.relational.database import Database
from repro.relational.relation import Relation


def path_instance():
    R = Relation("R", ("a", "b"), [(a, b) for a in range(12)
                                   for b in range(4)])
    S = Relation("S", ("b", "c"), [(b, c) for b in range(4)
                                   for c in range(12)])
    query = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
    return query, Database([R, S])


def reference(query, database, selections):
    return sorted(nested_loop_stream(query, database, selections=selections))


class TestExecutePlan:
    def test_cross_atom_predicate_applied_mid_plan(self):
        query, database = path_instance()
        sels = [comparison("A", "<", "C")]
        plan = left_deep_plan([query.edge_key(0), query.edge_key(1)])
        execution = execute_plan(plan, query, database, selections=sels)
        assert (sorted(execution.result.tuples)
                == reference(query, database, sels))

    def test_single_atom_predicate_filters_the_leaf(self):
        query, database = path_instance()
        sels = [comparison("A", "==", 3)]
        plan = left_deep_plan([query.edge_key(0), query.edge_key(1)])
        with_sel = execute_plan(plan, query, database, selections=sels)
        without = execute_plan(plan, query, database)
        assert (sorted(with_sel.result.tuples)
                == reference(query, database, sels))
        # The leaf filter shrinks the join work (the plan's only join is
        # the final result, so compare emitted tuples, not intermediates).
        assert (with_sel.counter.tuples_emitted
                < without.counter.tuples_emitted / 4)

    def test_selective_cross_atom_predicate_shrinks_intermediates(self):
        # Three-atom chain: A < C fires at the first join, before U joins.
        R = Relation("R", ("a", "b"), [(a, b) for a in range(10)
                                       for b in range(3)])
        S = Relation("S", ("b", "c"), [(b, 0) for b in range(3)])
        U = Relation("U", ("c", "d"), [(0, d) for d in range(10)])
        query = ConjunctiveQuery([Atom("R", ("A", "B")),
                                  Atom("S", ("B", "C")),
                                  Atom("U", ("C", "D"))])
        database = Database([R, S, U])
        sels = [comparison("A", "<", "C")]  # only A == 0 < ... never: C == 0
        plan = left_deep_plan([query.edge_key(i) for i in range(3)])
        pushed = execute_plan(plan, query, database, selections=sels)
        baseline = execute_plan(plan, query, database)
        assert sorted(pushed.result.tuples) == reference(query, database, sels)
        assert pushed.total_intermediate < baseline.total_intermediate

    def test_unknown_selection_variable_raises(self):
        query, database = path_instance()
        plan = left_deep_plan([query.edge_key(0), query.edge_key(1)])
        with pytest.raises(QueryError, match="outside the query variables"):
            execute_plan(plan, query, database,
                         selections=[comparison("A", "<", "Z")])


class TestYannakakis:
    def test_cross_atom_predicate_applied_during_phase_four(self):
        query, database = path_instance()
        sels = [comparison("A", "<", "C")]
        result = yannakakis(query, database, selections=sels)
        assert sorted(result.tuples) == reference(query, database, sels)

    def test_predicate_prunes_join_work(self):
        query, database = path_instance()
        sels = [comparison("A", ">", 100)]  # unsatisfiable: prunes all
        counter = OperationCounter()
        result = yannakakis(query, database, counter=counter, selections=sels)
        baseline = OperationCounter()
        yannakakis(query, database, counter=baseline)
        assert result.is_empty()
        assert counter.intermediate_tuples < baseline.intermediate_tuples

    def test_unknown_selection_variable_raises(self):
        query, database = path_instance()
        with pytest.raises(QueryError, match="outside the query variables"):
            yannakakis(query, database,
                       selections=[comparison("A", "<", "Z")])
