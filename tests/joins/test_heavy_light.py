"""Tests for heavy/light partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.heavy_light import heavy_light_partition
from repro.joins.instrumentation import OperationCounter
from repro.relational.relation import Relation
from repro.relational.statistics import degree


class TestHeavyLightPartition:
    def test_basic_split(self):
        # Value 1 has degree 3 (heavy at threshold 2), value 2 has degree 1.
        r = Relation("R", ("A", "B"), [(1, 1), (1, 2), (1, 3), (2, 1)])
        split = heavy_light_partition(r, ("A",), threshold=2)
        assert len(split.heavy) == 3
        assert len(split.light) == 1
        assert split.verify()

    def test_partition_covers_relation(self):
        r = Relation("R", ("A", "B"), [(i % 3, i) for i in range(12)])
        split = heavy_light_partition(r, ("A",), threshold=3)
        assert split.heavy.tuples | split.light.tuples == r.tuples
        assert not (split.heavy.tuples & split.light.tuples)

    def test_zero_threshold_everything_heavy(self):
        r = Relation("R", ("A", "B"), [(1, 1), (2, 2)])
        split = heavy_light_partition(r, ("A",), threshold=0)
        assert len(split.heavy) == 2
        assert len(split.light) == 0

    def test_huge_threshold_everything_light(self):
        r = Relation("R", ("A", "B"), [(1, 1), (1, 2)])
        split = heavy_light_partition(r, ("A",), threshold=100)
        assert len(split.heavy) == 0
        assert len(split.light) == 2

    def test_composite_key(self):
        r = Relation("R", ("A", "B", "C"), [(1, 1, 1), (1, 1, 2), (1, 2, 1)])
        split = heavy_light_partition(r, ("A", "B"), threshold=1)
        assert len(split.heavy) == 2
        assert len(split.light) == 1

    def test_counter_charged(self):
        counter = OperationCounter()
        r = Relation("R", ("A", "B"), [(1, 1)])
        heavy_light_partition(r, ("A",), threshold=1, counter=counter)
        assert counter.tuples_scanned == 2

    def test_counter_empty_relation_charges_nothing(self):
        # Regression: the empty relation used to be charged for scan
        # passes it never performs.
        counter = OperationCounter()
        r = Relation("R", ("A", "B"), [])
        heavy_light_partition(r, ("A",), threshold=3, counter=counter)
        assert counter.tuples_scanned == 0

    def test_counter_sub_unit_threshold_charges_one_pass(self):
        # Regression: threshold < 1 means every key is heavy without
        # counting (integer degrees are >= 1), so only the single
        # splitting scan is charged — not the counting pass too.
        counter = OperationCounter()
        r = Relation("R", ("A", "B"), [(i, i) for i in range(7)])
        heavy_light_partition(r, ("A",), threshold=0, counter=counter)
        assert counter.tuples_scanned == len(r)

    def test_counter_general_case_charges_two_passes(self):
        # threshold >= 1 needs the counting pass plus the splitting
        # pass: exactly 2|R| tuples scanned, regardless of the outcome.
        counter = OperationCounter()
        r = Relation("R", ("A", "B"), [(i % 2, i) for i in range(9)])
        heavy_light_partition(r, ("A",), threshold=1, counter=counter)
        assert counter.tuples_scanned == 2 * len(r)

    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 20)), max_size=40),
           st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_partition_properties(self, tuples, threshold):
        r = Relation("R", ("A", "B"), tuples)
        split = heavy_light_partition(r, ("A",), threshold=threshold)
        # Disjoint cover.
        assert split.heavy.tuples | split.light.tuples == r.tuples
        assert not (split.heavy.tuples & split.light.tuples)
        # Light part has bounded degree.
        if len(split.light):
            assert degree(split.light, ("A",), ("B",)) <= threshold
        # Heavy part has few distinct keys.
        if threshold > 0:
            assert len(split.heavy.column("A")) <= len(r) / threshold + 1e-9
        assert split.verify()
