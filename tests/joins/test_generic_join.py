"""Tests for Generic-Join."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.joins.naive import nested_loop_join
from repro.query.atoms import (
    Atom,
    ConjunctiveQuery,
    clique_query,
    cycle_query,
    path_query,
    triangle_query,
)
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestGenericJoinCorrectness:
    def test_small_triangle(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        output = generic_join(query, database)
        assert output.tuples == frozenset(expected)
        assert output.attributes == ("A", "B", "C")

    def test_every_variable_order_gives_same_result(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        import itertools
        for order in itertools.permutations(("A", "B", "C")):
            assert generic_join(query, database, order=order).tuples == frozenset(expected)

    def test_empty_relation_gives_empty_output(self):
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), [(1, 2)]),
            Relation("S", ("B", "C"), []),
            Relation("T", ("A", "C"), [(1, 3)]),
        ])
        assert generic_join(query, database).is_empty()

    def test_single_atom_query(self):
        query = ConjunctiveQuery([Atom("R", ("A", "B"))])
        database = Database([Relation("R", ("A", "B"), [(1, 2), (3, 4)])])
        output = generic_join(query, database)
        assert output.tuples == frozenset({(1, 2), (3, 4)})

    def test_projection_head(self):
        query = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))],
                                 head=("A", "C"))
        database = Database([
            Relation("R", ("A", "B"), [(1, 2), (4, 2)]),
            Relation("S", ("B", "C"), [(2, 3)]),
        ])
        output = generic_join(query, database)
        assert output.attributes == ("A", "C")
        assert output.tuples == frozenset({(1, 3), (4, 3)})

    def test_self_join_triangle_counting(self):
        edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
        query = ConjunctiveQuery([
            Atom("E", ("A", "B")), Atom("E", ("B", "C")), Atom("E", ("A", "C")),
        ])
        database = Database([Relation("E", ("X", "Y"), edges)])
        output = generic_join(query, database)
        assert output.tuples == frozenset({(0, 1, 2)})

    def test_path_query_matches_naive(self):
        query = path_query(3)
        database = Database([
            Relation("E_1", ("A", "B"), [(1, 2), (2, 3)]),
            Relation("E_2", ("A", "B"), [(2, 3), (3, 4)]),
            Relation("E_3", ("A", "B"), [(3, 4), (4, 5)]),
        ])
        assert generic_join(query, database) == nested_loop_join(query, database)

    def test_four_clique(self):
        # Complete graph on 5 vertices: C(5,4) * 4! orderings... as tuples of
        # distinct vertices forming a clique; with all edges present every
        # 4-tuple of distinct vertices where each pair is an edge qualifies.
        vertices = range(5)
        edges = [(i, j) for i in vertices for j in vertices if i != j]
        query = clique_query(4)
        database = Database([
            Relation(atom.relation, ("A", "B"), edges) for atom in query.atoms
        ])
        output = generic_join(query, database)
        expected = nested_loop_join(query, database)
        assert output == expected
        assert len(output) == 5 * 4 * 3 * 2

    def test_counter_charges_work(self, tight_triangle_100):
        query, database = tight_triangle_100
        counter = OperationCounter()
        output = generic_join(query, database, counter=counter)
        assert counter.tuples_emitted == len(output)
        assert counter.intersection_steps > 0
        assert counter.search_nodes > 0

    def test_invalid_order_rejected(self, tight_triangle_100):
        query, database = tight_triangle_100
        with pytest.raises(ValueError):
            generic_join(query, database, order=("A", "B"))


class TestGenericJoinProperties:
    pairs = st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12)

    @given(pairs, pairs, pairs)
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_nested_loop_on_triangles(self, r, s, t):
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), r),
            Relation("S", ("B", "C"), s),
            Relation("T", ("A", "C"), t),
        ])
        assert generic_join(query, database) == nested_loop_join(query, database)

    @given(pairs, pairs, pairs, pairs)
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_nested_loop_on_4cycles(self, e1, e2, e3, e4):
        query = cycle_query(4)
        database = Database([
            Relation("E_1", ("A", "B"), e1),
            Relation("E_2", ("A", "B"), e2),
            Relation("E_3", ("A", "B"), e3),
            Relation("E_4", ("A", "B"), e4),
        ])
        assert generic_join(query, database) == nested_loop_join(query, database)
