"""Property tests for the ``HeavyLightSplit.verify`` invariants.

``verify`` certifies the two facts the whole heavy/light argument rests
on — the heavy part has at most |R|/t distinct key values and every
light key has degree at most t — so these tests pin it from both sides:
every honest partition must pass, and partitions corrupted in either
direction (a light tuple whose key is over-degree, a heavy part stuffed
with too many distinct keys) must fail.  Threshold edge cases (0, huge,
and an exact degree tie) get explicit treatment.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.heavy_light import HeavyLightSplit, heavy_light_partition
from repro.relational.relation import Relation

edge_sets = st.sets(st.tuples(st.integers(0, 6), st.integers(0, 25)),
                    max_size=50)
thresholds = st.one_of(st.integers(0, 8), st.floats(0.5, 8.0))


def counts_by_key(tuples):
    counts = {}
    for a, _ in tuples:
        counts[a] = counts.get(a, 0) + 1
    return counts


class TestHonestPartitionsVerify:
    @given(edge_sets, thresholds)
    @settings(max_examples=120, deadline=None)
    def test_partition_always_verifies(self, tuples, threshold):
        split = heavy_light_partition(
            Relation("R", ("A", "B"), tuples), ("A",), threshold)
        assert split.verify()

    @given(edge_sets, thresholds)
    @settings(max_examples=120, deadline=None)
    def test_heavy_distinct_key_bound(self, tuples, threshold):
        split = heavy_light_partition(
            Relation("R", ("A", "B"), tuples), ("A",), threshold)
        if threshold > 0:
            heavy_keys = {a for a, _ in split.heavy.tuples}
            assert len(heavy_keys) <= len(tuples) / threshold + 1e-9

    @given(edge_sets, thresholds)
    @settings(max_examples=120, deadline=None)
    def test_light_degree_bound(self, tuples, threshold):
        split = heavy_light_partition(
            Relation("R", ("A", "B"), tuples), ("A",), threshold)
        for key, count in counts_by_key(split.light.tuples).items():
            assert count <= threshold

    @given(edge_sets, thresholds)
    @settings(max_examples=120, deadline=None)
    def test_disjoint_cover(self, tuples, threshold):
        relation = Relation("R", ("A", "B"), tuples)
        split = heavy_light_partition(relation, ("A",), threshold)
        assert split.heavy.tuples | split.light.tuples == relation.tuples
        assert not (split.heavy.tuples & split.light.tuples)


class TestCorruptedPartitionsFail:
    @given(edge_sets.filter(lambda s: len(s) >= 2), st.integers(1, 4))
    @settings(max_examples=120, deadline=None)
    def test_overloaded_light_key_fails(self, tuples, threshold):
        # Declare everything light at a threshold some key exceeds:
        # the light degree bound must catch it.
        counts = counts_by_key(tuples)
        if max(counts.values()) <= threshold:
            return  # nothing exceeds the threshold: the split is honest
        split = HeavyLightSplit(
            heavy=Relation("R_heavy", ("A", "B"), []),
            light=Relation("R_light", ("A", "B"), tuples),
            threshold=float(threshold), key=("A",))
        assert not split.verify()

    @given(st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_too_many_distinct_heavy_keys_fails(self, n_keys):
        # n distinct singleton keys declared heavy at threshold n: the
        # bound allows at most n/n = 1 distinct heavy key.
        tuples = [(i, 0) for i in range(n_keys)]
        split = HeavyLightSplit(
            heavy=Relation("R_heavy", ("A", "B"), tuples),
            light=Relation("R_light", ("A", "B"), []),
            threshold=float(n_keys), key=("A",))
        assert not split.verify()


class TestThresholdEdgeCases:
    def test_threshold_zero_everything_heavy_and_verifies(self):
        # Any integer degree exceeds 0, so heavy = R; verify skips the
        # |R|/t bound (it is vacuous at t = 0) and must still pass.
        r = Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 1)])
        split = heavy_light_partition(r, ("A",), threshold=0)
        assert split.light.tuples == frozenset()
        assert split.heavy.tuples == r.tuples
        assert split.verify()

    def test_huge_threshold_everything_light_and_verifies(self):
        r = Relation("R", ("A", "B"), [(1, i) for i in range(6)])
        split = heavy_light_partition(r, ("A",), threshold=float("inf"))
        assert split.heavy.tuples == frozenset()
        assert split.light.tuples == r.tuples
        assert split.verify()

    def test_exact_tie_goes_light(self):
        # Degree exactly equal to the threshold is light — heavy means
        # *strictly more than* threshold extensions.
        r = Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 1)])
        split = heavy_light_partition(r, ("A",), threshold=2)
        assert (1, 1) in split.light.tuples and (1, 2) in split.light.tuples
        assert split.heavy.tuples == frozenset()
        assert split.verify()

    def test_just_below_tie_goes_heavy(self):
        r = Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 1)])
        split = heavy_light_partition(r, ("A",), threshold=1.999)
        assert split.heavy.tuples == {(1, 1), (1, 2)}
        assert split.light.tuples == {(2, 1)}
        assert split.verify()

    def test_empty_relation_verifies_at_any_threshold(self):
        for threshold in (0, 1, 2.5, float("inf")):
            split = heavy_light_partition(
                Relation("R", ("A", "B"), []), ("A",), threshold)
            assert split.verify()
