"""Tests for pairwise plan enumeration and the best-plan baseline."""

import pytest

from repro.datagen.worstcase import triangle_skew_instance
from repro.errors import QueryError
from repro.joins.binary_plans import (
    all_left_deep_plans,
    best_left_deep_execution,
    greedy_left_deep_plan,
)
from repro.joins.generic_join import generic_join
from repro.joins.plan import execute_plan
from repro.query.atoms import Atom, ConjunctiveQuery, triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestGreedyPlan:
    def test_starts_with_smallest_relation(self):
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), [(i, i) for i in range(50)]),
            Relation("S", ("B", "C"), [(1, 1)]),
            Relation("T", ("A", "C"), [(i, i) for i in range(10)]),
        ])
        plan = greedy_left_deep_plan(query, database)
        assert plan.atoms()[0] == "S"

    def test_greedy_plan_is_correct(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        plan = greedy_left_deep_plan(query, database)
        assert execute_plan(plan, query, database).result.tuples == frozenset(expected)

    def test_disconnected_query_falls_back_to_product(self):
        query = ConjunctiveQuery([Atom("R", ("A",)), Atom("S", ("B",))])
        database = Database([
            Relation("R", ("A",), [(1,), (2,)]),
            Relation("S", ("B",), [(5,)]),
        ])
        plan = greedy_left_deep_plan(query, database)
        execution = execute_plan(plan, query, database)
        assert len(execution.result) == 2


class TestPlanEnumeration:
    def test_triangle_has_six_connected_left_deep_plans(self):
        plans = all_left_deep_plans(triangle_query())
        # All 3! orders are connected for the triangle.
        assert len(plans) == 6

    def test_chain_skips_disconnected_orders(self):
        query = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C")),
                                  Atom("T", ("C", "D"))])
        plans = all_left_deep_plans(query)
        # Orders like (R, T, S) require a cartesian product and are skipped.
        assert len(plans) == 4

    def test_max_plans_cap(self):
        plans = all_left_deep_plans(triangle_query(), max_plans=2)
        assert len(plans) == 2

    def test_disconnected_query_still_returns_a_plan(self):
        query = ConjunctiveQuery([Atom("R", ("A",)), Atom("S", ("B",))])
        assert len(all_left_deep_plans(query)) >= 1


class TestBestExecution:
    def test_output_matches_wcoj(self, skew_triangle_100):
        query, database = skew_triangle_100
        best = best_left_deep_execution(query, database)
        assert best.result == generic_join(query, database)

    def test_best_is_no_worse_than_greedy(self):
        query, database = triangle_skew_instance(120)
        greedy = execute_plan(greedy_left_deep_plan(query, database), query, database)
        best = best_left_deep_execution(query, database)
        assert best.max_intermediate <= greedy.max_intermediate

    def test_alternative_metrics(self, tight_triangle_100):
        query, database = tight_triangle_100
        by_total = best_left_deep_execution(query, database, metric="total_intermediate")
        by_work = best_left_deep_execution(query, database, metric="total_work")
        assert by_total.result == by_work.result

    def test_unknown_metric_rejected(self, tight_triangle_100):
        query, database = tight_triangle_100
        with pytest.raises(QueryError):
            best_left_deep_execution(query, database, metric="wall_clock")

    def test_skew_instance_every_plan_has_large_intermediate(self):
        query, database = triangle_skew_instance(100)
        best = best_left_deep_execution(query, database)
        n = database.max_relation_size()
        output = len(generic_join(query, database))
        # Even the best pairwise plan materializes an intermediate much larger
        # than the output (the paper's separation).
        assert best.max_intermediate > 5 * output
        assert best.max_intermediate >= (n / 2) ** 2 / 4
