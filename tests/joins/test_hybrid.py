"""The skew-workload harness: instance-level heavy/light partitions and
the randomized cross-engine agreement suite pinning the hybrid strategy
bit-identical to the generic-join oracle.

The partition half checks :func:`repro.joins.hybrid.partition_instance`
invariants (disjoint cover, value-level key agreement across relations,
the global distinct-key bound) on Zipf-skewed graphs across exponents and
seeds.  The agreement half runs every query shape the hybrid can dispatch
— cyclic and acyclic, projected and full heads, self-joins, selections,
group-by aggregates, ORDER BY, and post-delta states — through
``mode="hybrid"`` and ``mode="generic"`` and requires identical results:
same row multiset, same aggregate values, same ORDER BY order.
"""

import pytest

from repro.datagen.graphs import (erdos_renyi_graph, zipf_outdegree_graph,
                                  zipf_triangle_instance)
from repro.engine import Engine
from repro.joins.hybrid import partition_instance, residual_query
from repro.query.atoms import Atom, ConjunctiveQuery, triangle_query
from repro.query.builder import Q
from repro.query.variable_order import skew_split
from repro.relational.database import Database
from repro.relational.relation import Relation

SKEWS = (0.8, 1.2, 1.6)
SEEDS = (0, 1)


def zipf_db(skew: float, seed: int, edges: int = 150) -> Database:
    """Five Zipf-skewed edge relations over one shared vertex domain.

    Low vertex ids are heavy in several relations at once — the regime
    where promotion (a light tuple whose key is heavy *elsewhere*) is
    actually exercised, not just theoretically possible.
    """
    vertices = max(10, edges // 5)

    def rel(name, attributes, offset):
        return zipf_outdegree_graph(vertices, vertices, edges, skew=skew,
                                    seed=7 * seed + offset, name=name,
                                    attributes=attributes)

    return Database([
        rel("R", ("A", "B"), 1),
        rel("S", ("B", "C"), 2),
        rel("T", ("A", "C"), 3),
        rel("U", ("C", "D"), 4),
        rel("W", ("D", "A"), 5),
    ])


# ---------------------------------------------------------------------------
# Partition invariants
# ---------------------------------------------------------------------------
class TestPartitionInvariants:
    @pytest.mark.parametrize("skew", SKEWS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_verify_on_zipf_triangles(self, skew, seed):
        query, database = zipf_triangle_instance(150, skew=skew, seed=seed)
        variable, threshold, _ = skew_split(query, database)
        part = partition_instance(query, database, variable, threshold)
        assert part.verify(query, database)

    @pytest.mark.parametrize("threshold", (1.0, 3.0, 10.0))
    def test_verify_across_thresholds(self, threshold):
        query, database = zipf_triangle_instance(150, skew=1.4, seed=2)
        part = partition_instance(query, database, "A", threshold)
        assert part.verify(query, database)

    def test_sides_cover_exactly_and_share_untouched(self):
        query, database = zipf_triangle_instance(150, skew=1.4, seed=0)
        part = partition_instance(query, database, "A", 4.0)
        # R and T touch A, S does not: both sides reuse the original S.
        assert part.touched == (0, 2)
        assert part.heavy_db.get("S") is database.get("S")
        assert part.light_db.get("S") is database.get("S")
        for i in part.touched:
            atom = query.atoms[i]
            heavy = part.heavy_db.get(part.heavy_query.atoms[i].relation)
            light = part.light_db.get(part.light_query.atoms[i].relation)
            assert heavy.tuples | light.tuples == database.get(
                atom.relation).tuples
            assert not heavy.tuples & light.tuples

    def test_promotion_moves_keys_heavy_elsewhere(self):
        # A is heavy in R (degree 3 > threshold 2) but light in T; the
        # value-level rule promotes T's a0 tuples to the heavy side.
        r = [("a0", f"b{i}") for i in range(3)] + [("a1", "b0")]
        t = [("a0", "c0"), ("a1", "c1")]
        s = [(f"b{i}", f"c{j}") for i in range(3) for j in range(2)]
        database = Database([
            Relation("R", ("A", "B"), r), Relation("S", ("B", "C"), s),
            Relation("T", ("A", "C"), t),
        ])
        part = partition_instance(triangle_query(), database, "A", 2.0)
        assert part.heavy_keys == {"a0"}
        heavy_t = part.heavy_db.get(part.heavy_query.atoms[2].relation)
        assert heavy_t.tuples == {("a0", "c0")}
        assert part.verify(triangle_query(), database)

    def test_residual_structure(self):
        triangle = triangle_query()
        residual = residual_query(triangle, "A")
        assert [a.variables for a in residual.atoms] == [("B",), ("B", "C"),
                                                         ("C",)]
        gate_only = ConjunctiveQuery([Atom("R", ("A",))])
        assert residual_query(gate_only, "A") is None


# ---------------------------------------------------------------------------
# Cross-engine agreement
# ---------------------------------------------------------------------------
#: Unordered query shapes: hybrid and generic must return the same row
#: multiset (set semantics — rows are deduplicated head tuples).
SHAPES = [
    "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)",          # full triangle
    "Q(A,B) :- R(A,B), S(B,C), T(A,C)",            # projected head
    "Q(B,C) :- R(A,B), S(B,C), T(A,C)",            # skew var projected away
    "Q(A,B,C) :- R(A,B), S(B,C)",                  # 2-path, full
    "Q(A,D) :- R(A,B), S(B,C), U(C,D)",            # 3-path, projected
    "Q(A,B,C) :- R(A,B), T(A,C)",                  # star-2 (disconnected
                                                   #   residual)
    "Q(B,C,D) :- R(A,B), T(A,C), W(D,A)",          # star-3, center dropped
    "Q(A,B,C) :- R(A,B), R(B,C)",                  # self-join path
    "Q(A,B,C) :- R(A,B), R(B,C), R(A,C)",          # self-join triangle
    "Q(A,B,C,D) :- R(A,B), S(B,C), U(C,D), W(D,A)",  # 4-cycle
    "Q(A,B,C) :- R(A,B), S(B,C), T(A,C), A < B",   # cross-atom selection
    "Q(B) :- R(A,B), S(B,C), C < 12",              # constant selection
    "Q(A,B,C) :- R(A,B), S(B,C), T(A,C), A < 6",   # selection on skew var
    "Q(A, COUNT(*)) :- R(A,B), S(B,C), T(A,C)",    # group-by count
    "Q(B, SUM(C)) :- R(A,B), S(B,C), T(A,C)",      # group-by sum
    "Q(A, COUNT(*)) :- R(A,B), T(A,C)",            # count on the skew var
]


class TestHybridAgreement:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("skew", SKEWS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_generic_oracle(self, shape, skew, seed):
        engine = Engine(zipf_db(skew, seed))
        oracle = sorted(engine.execute(shape, mode="generic").tuples)
        rows = sorted(engine.execute(shape, mode="hybrid").tuples)
        assert rows == oracle

    @pytest.mark.parametrize("skew", SKEWS)
    def test_order_by_is_order_identical(self, skew):
        engine = Engine(zipf_db(skew, 0))
        q = (Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
             .select("B", "A").order_by("-B", "A"))
        assert (list(engine.stream(q, mode="hybrid"))
                == list(engine.stream(q, mode="generic")))

    def test_order_by_limit_prefix(self, ):
        engine = Engine(zipf_db(1.6, 1))
        q = (Q.from_("R", "A", "B").from_("S", "B", "C").from_("T", "A", "C")
             .select("A", "C").order_by("-C", "A").limit(5))
        assert (list(engine.stream(q, mode="hybrid"))
                == list(engine.stream(q, mode="generic")))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agreement_survives_deltas(self, seed):
        shape = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
        hybrid = Engine(zipf_db(1.4, seed))
        generic = Engine(zipf_db(1.4, seed))
        for engine in (hybrid, generic):
            # grow one hub past the threshold and delete some light edges
            engine.apply_delta("R", inserts=[(0, 90 + i) for i in range(25)])
            engine.apply_delta("S", deletes=list(
                engine.database.get("S").tuples)[:10])
        assert (sorted(hybrid.execute(shape, mode="hybrid").tuples)
                == sorted(generic.execute(shape, mode="generic").tuples))

    def test_forced_hybrid_on_uniform_data_still_exact(self):
        # Dispatch would never choose hybrid here (no value beats the
        # threshold), but forcing it must still be exact: one side of the
        # partition is simply empty.
        database = Database([
            erdos_renyi_graph(40, 120, seed=1, name="R",
                              attributes=("A", "B")),
            erdos_renyi_graph(40, 120, seed=2, name="S",
                              attributes=("B", "C")),
            erdos_renyi_graph(40, 120, seed=3, name="T",
                              attributes=("A", "C")),
        ])
        engine = Engine(database)
        shape = "Q(A,B,C) :- R(A,B), S(B,C), T(A,C)"
        assert (sorted(engine.execute(shape, mode="hybrid").tuples)
                == sorted(engine.execute(shape, mode="generic").tuples))

    def test_single_atom_query(self):
        engine = Engine(zipf_db(1.6, 0))
        shape = "Q(B,A) :- R(A,B)"
        assert (sorted(engine.execute(shape, mode="hybrid").tuples)
                == sorted(engine.execute(shape, mode="generic").tuples))
