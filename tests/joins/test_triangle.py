"""Tests for the Section 2 triangle algorithms (Algorithms 1 and 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.worstcase import triangle_agm_tight_instance, triangle_skew_instance
from repro.joins.instrumentation import OperationCounter
from repro.joins.naive import nested_loop_join
from repro.joins.triangle import (
    triangle_algorithm1,
    triangle_algorithm2,
    triangle_binary_plan,
)
from repro.query.atoms import triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


def make_relations(r, s, t):
    return (Relation("R", ("A", "B"), r), Relation("S", ("B", "C"), s),
            Relation("T", ("A", "C"), t))


class TestAlgorithm1:
    def test_small_instance(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        out = triangle_algorithm1(database["R"], database["S"], database["T"])
        assert out.tuples == frozenset(expected)

    def test_schema_validation(self):
        bad = Relation("R", ("X", "Y"), [(1, 2)])
        good_s = Relation("S", ("B", "C"), [])
        good_t = Relation("T", ("A", "C"), [])
        with pytest.raises(ValueError):
            triangle_algorithm1(bad, good_s, good_t)

    def test_work_respects_agm_bound_on_tight_instance(self):
        query, database = triangle_agm_tight_instance(400)
        r, s, t = database["R"], database["S"], database["T"]
        counter = OperationCounter()
        out = triangle_algorithm1(r, s, t, counter=counter)
        agm = math.sqrt(len(r) * len(s) * len(t))
        n = max(len(r), len(s), len(t))
        # Work (excluding the linear-time indexing pass) is O(N + AGM); allow
        # a small constant factor.
        work = counter.intersection_steps + counter.tuples_emitted
        assert work <= 4 * (n + agm)
        assert len(out) == pytest.approx(agm, rel=1e-9)

    def test_work_near_linear_on_skew_instance(self):
        query, database = triangle_skew_instance(400)
        r, s, t = database["R"], database["S"], database["T"]
        counter = OperationCounter()
        out = triangle_algorithm1(r, s, t, counter=counter)
        n = max(len(r), len(s), len(t))
        work = counter.intersection_steps + counter.tuples_emitted
        # On the star instance the WCOJ algorithm does near-linear work,
        # far below the quadratic blow-up of pairwise plans.
        assert work <= 10 * n
        assert len(out) < 2 * n


class TestAlgorithm2:
    def test_small_instance(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        out = triangle_algorithm2(database["R"], database["S"], database["T"])
        assert out.tuples == frozenset(expected)

    def test_empty_input(self):
        r, s, t = make_relations([], [(1, 2)], [(1, 2)])
        assert triangle_algorithm2(r, s, t).is_empty()

    def test_custom_theta_still_correct(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        for theta in (0.5, 1.0, 10.0):
            out = triangle_algorithm2(database["R"], database["S"], database["T"],
                                      theta=theta)
            assert out.tuples == frozenset(expected)

    def test_intermediates_respect_bound_on_tight_instance(self):
        query, database = triangle_agm_tight_instance(400)
        r, s, t = database["R"], database["S"], database["T"]
        counter = OperationCounter()
        triangle_algorithm2(r, s, t, counter=counter)
        agm = math.sqrt(len(r) * len(s) * len(t))
        # Each branch's intermediate is at most sqrt(|R||S||T|) (Section 2).
        assert counter.intermediate_tuples <= 2 * agm + 1e-9

    def test_intermediates_respect_bound_on_skew_instance(self):
        query, database = triangle_skew_instance(300)
        r, s, t = database["R"], database["S"], database["T"]
        counter = OperationCounter()
        triangle_algorithm2(r, s, t, counter=counter)
        agm = math.sqrt(len(r) * len(s) * len(t))
        assert counter.intermediate_tuples <= 2 * agm + 1e-9


class TestBinaryPlanBaseline:
    def test_small_instance(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        out = triangle_binary_plan(database["R"], database["S"], database["T"])
        assert out.tuples == frozenset(expected)

    def test_quadratic_intermediate_on_skew_instance(self):
        query, database = triangle_skew_instance(200)
        r, s, t = database["R"], database["S"], database["T"]
        counter = OperationCounter()
        triangle_binary_plan(r, s, t, counter=counter)
        n = len(r)
        # R JOIN S on the star instance contains ~ (n/2)^2 tuples.
        assert counter.intermediate_tuples >= (n / 2 - 1) ** 2 / 2


class TestCrossAlgorithmAgreement:
    pairs = st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15)

    @given(pairs, pairs, pairs)
    @settings(max_examples=50, deadline=None)
    def test_all_three_agree_with_naive(self, r, s, t):
        rel_r, rel_s, rel_t = make_relations(r, s, t)
        database = Database([rel_r, rel_s, rel_t])
        expected = nested_loop_join(triangle_query(), database)
        a1 = triangle_algorithm1(rel_r, rel_s, rel_t)
        a2 = triangle_algorithm2(rel_r, rel_s, rel_t)
        bp = triangle_binary_plan(rel_r, rel_s, rel_t)
        assert a1.tuples == expected.tuples
        assert a2.tuples == expected.tuples
        assert bp.tuples == expected.tuples
