"""Tests for operation counters."""

from repro.joins.instrumentation import OperationCounter


class TestOperationCounter:
    def test_charge_known_counters(self):
        counter = OperationCounter()
        counter.charge(tuples_scanned=5, hash_probes=2)
        counter.charge(tuples_scanned=3)
        assert counter.tuples_scanned == 8
        assert counter.hash_probes == 2
        assert counter.total() == 10

    def test_charge_unknown_counter_goes_to_extra(self):
        counter = OperationCounter()
        counter.charge(partitions=4)
        assert counter.extra["partitions"] == 4
        assert counter.total() == 4

    def test_as_dict_includes_total(self):
        counter = OperationCounter()
        counter.charge(seeks=7)
        d = counter.as_dict()
        assert d["seeks"] == 7
        assert d["total"] == 7

    def test_reset(self):
        counter = OperationCounter()
        counter.charge(tuples_emitted=3, custom=2)
        counter.reset()
        assert counter.total() == 0
        assert counter.extra == {}

    def test_merge(self):
        a = OperationCounter()
        b = OperationCounter()
        a.charge(tuples_scanned=1, custom=2)
        b.charge(tuples_scanned=3, custom=4, seeks=5)
        a.merge(b)
        assert a.tuples_scanned == 4
        assert a.seeks == 5
        assert a.extra["custom"] == 6

    def test_negative_charge_allowed_for_corrections(self):
        counter = OperationCounter()
        counter.charge(intermediate_tuples=10)
        counter.charge(intermediate_tuples=-4)
        assert counter.intermediate_tuples == 6

    def test_str_mentions_nonzero_counters(self):
        counter = OperationCounter()
        counter.charge(search_nodes=2)
        assert "search_nodes=2" in str(counter)
