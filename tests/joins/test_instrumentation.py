"""Tests for operation counters."""

from repro.joins.instrumentation import OperationCounter, phase


class TestOperationCounter:
    def test_charge_known_counters(self):
        counter = OperationCounter()
        counter.charge(tuples_scanned=5, hash_probes=2)
        counter.charge(tuples_scanned=3)
        assert counter.tuples_scanned == 8
        assert counter.hash_probes == 2
        assert counter.total() == 10

    def test_charge_unknown_counter_goes_to_extra(self):
        counter = OperationCounter()
        counter.charge(partitions=4)
        assert counter.extra["partitions"] == 4
        assert counter.total() == 4

    def test_as_dict_includes_total(self):
        counter = OperationCounter()
        counter.charge(seeks=7)
        d = counter.as_dict()
        assert d["seeks"] == 7
        assert d["total"] == 7

    def test_reset(self):
        counter = OperationCounter()
        counter.charge(tuples_emitted=3, custom=2)
        counter.reset()
        assert counter.total() == 0
        assert counter.extra == {}

    def test_merge(self):
        a = OperationCounter()
        b = OperationCounter()
        a.charge(tuples_scanned=1, custom=2)
        b.charge(tuples_scanned=3, custom=4, seeks=5)
        a.merge(b)
        assert a.tuples_scanned == 4
        assert a.seeks == 5
        assert a.extra["custom"] == 6

    def test_negative_charge_allowed_for_corrections(self):
        counter = OperationCounter()
        counter.charge(intermediate_tuples=10)
        counter.charge(intermediate_tuples=-4)
        assert counter.intermediate_tuples == 6

    def test_str_mentions_nonzero_counters(self):
        counter = OperationCounter()
        counter.charge(search_nodes=2)
        assert "search_nodes=2" in str(counter)

    def test_merge_with_extra_counters_on_both_sides(self):
        a = OperationCounter()
        b = OperationCounter()
        a.charge(only_in_a=1, shared=2)
        b.charge(only_in_b=3, shared=4)
        a.merge(b)
        assert a.extra == {"only_in_a": 1, "shared": 6, "only_in_b": 3}
        assert a.total() == 10


class TestBreakdown:
    def test_attribute_accumulates_labels(self):
        counter = OperationCounter(detail=True)
        counter.attribute("search_nodes[A]")
        counter.attribute("search_nodes[A]", 2)
        counter.attribute("search_nodes[B]")
        assert counter.breakdown == {"search_nodes[A]": 3,
                                     "search_nodes[B]": 1}

    def test_breakdown_is_excluded_from_total_and_as_dict(self):
        # Breakdown re-slices already-charged work; counting it again
        # would double every attributed operation.
        counter = OperationCounter(detail=True)
        counter.charge(search_nodes=5)
        counter.attribute("search_nodes[A]", 5)
        assert counter.total() == 5
        assert "search_nodes[A]" not in counter.as_dict()

    def test_reset_clears_breakdown_but_keeps_detail(self):
        counter = OperationCounter(detail=True)
        counter.charge(seeks=1)
        counter.attribute("seeks[A]")
        counter.reset()
        assert counter.breakdown == {}
        assert counter.detail is True

    def test_merge_combines_breakdowns(self):
        a = OperationCounter(detail=True)
        b = OperationCounter(detail=True)
        a.attribute("search_nodes[A]", 1)
        b.attribute("search_nodes[A]", 2)
        b.attribute("search_nodes[B]", 3)
        a.merge(b)
        assert a.breakdown == {"search_nodes[A]": 3, "search_nodes[B]": 3}


class TestPhase:
    def test_phase_attributes_per_field_deltas(self):
        counter = OperationCounter(detail=True)
        counter.charge(tuples_scanned=10)
        with phase(counter, "semijoin.bottom_up"):
            counter.charge(tuples_scanned=4, hash_probes=2)
        assert counter.breakdown == {
            "semijoin.bottom_up.tuples_scanned": 4,
            "semijoin.bottom_up.hash_probes": 2,
        }
        assert counter.tuples_scanned == 14  # main tallies unchanged

    def test_phase_without_detail_is_a_noop(self):
        counter = OperationCounter()
        with phase(counter, "join"):
            counter.charge(tuples_scanned=3)
        assert counter.breakdown == {}

    def test_phase_with_none_counter_is_a_noop(self):
        with phase(None, "join"):
            pass

    def test_phase_records_even_when_the_body_raises(self):
        counter = OperationCounter(detail=True)
        try:
            with phase(counter, "frontier"):
                counter.charge(search_nodes=2)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert counter.breakdown == {"frontier.search_nodes": 2}

    def test_nested_phases_attribute_to_both_labels(self):
        counter = OperationCounter(detail=True)
        with phase(counter, "outer"):
            counter.charge(seeks=1)
            with phase(counter, "inner"):
                counter.charge(seeks=2)
        assert counter.breakdown == {"inner.seeks": 2, "outer.seeks": 3}


class TestPerVariableAttribution:
    def test_wcoj_breakdown_sums_to_search_nodes_total(
            self, small_triangle_instance):
        from repro.joins.generic_join import generic_join

        query, database, expected = small_triangle_instance
        counter = OperationCounter(detail=True)
        result = generic_join(query, database, counter=counter)
        assert set(result.tuples) == expected
        per_variable = {label: count
                        for label, count in counter.breakdown.items()
                        if label.startswith("search_nodes[")}
        assert set(per_variable) == {f"search_nodes[{v}]"
                                     for v in ("A", "B", "C")}
        assert sum(per_variable.values()) == counter.search_nodes

    def test_leapfrog_breakdown_matches_too(self, small_triangle_instance):
        from repro.joins.leapfrog import leapfrog_triejoin

        query, database, expected = small_triangle_instance
        counter = OperationCounter(detail=True)
        result = leapfrog_triejoin(query, database, counter=counter)
        assert set(result.tuples) == expected
        per_variable = [count for label, count in counter.breakdown.items()
                        if label.startswith("search_nodes[")]
        assert sum(per_variable) == counter.search_nodes

    def test_detail_off_leaves_breakdown_empty(self, small_triangle_instance):
        from repro.joins.generic_join import generic_join

        query, database, _expected = small_triangle_instance
        counter = OperationCounter()
        generic_join(query, database, counter=counter)
        assert counter.search_nodes > 0
        assert counter.breakdown == {}

    def test_yannakakis_phases_cover_the_semijoin_work(self):
        from repro.joins.yannakakis import yannakakis
        from repro.query.parser import parse_query
        from repro.relational.database import Database
        from repro.relational.relation import Relation

        database = Database([
            Relation("R", ("A", "B"), [(1, 2), (2, 3), (3, 4)]),
            Relation("S", ("B", "C"), [(2, 5), (3, 6), (9, 9)]),
        ])
        query = parse_query("Q(A,B,C) :- R(A,B), S(B,C).")
        counter = OperationCounter(detail=True)
        result = yannakakis(query, database, counter=counter)
        assert set(result.tuples) == {(1, 2, 5), (2, 3, 6)}
        labels = set(counter.breakdown)
        assert any(label.startswith("semijoin.bottom_up.")
                   for label in labels)
        assert any(label.startswith("join.") for label in labels)
