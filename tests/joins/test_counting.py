"""Tests for counting and SumProd aggregation over joins."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.counting import count_join, group_count, sum_product
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestCountJoin:
    def test_counts_match_materialized_output(self, tight_triangle_100):
        query, database = tight_triangle_100
        assert count_join(query, database) == len(generic_join(query, database))

    def test_counts_on_skew_instance(self, skew_triangle_100):
        query, database = skew_triangle_100
        assert count_join(query, database) == len(generic_join(query, database))

    def test_empty_result(self):
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), [(1, 2)]),
            Relation("S", ("B", "C"), [(3, 4)]),
            Relation("T", ("A", "C"), [(1, 4)]),
        ])
        assert count_join(query, database) == 0

    def test_work_comparable_to_generic_join(self, tight_triangle_100):
        query, database = tight_triangle_100
        count_counter = OperationCounter()
        join_counter = OperationCounter()
        count_join(query, database, counter=count_counter)
        generic_join(query, database, counter=join_counter)
        assert count_counter.intersection_steps == join_counter.intersection_steps

    def test_respects_explicit_order(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        for order in (("A", "B", "C"), ("C", "B", "A"), ("B", "A", "C")):
            assert count_join(query, database, order=order) == len(expected)

    pairs = st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=12)

    @given(pairs, pairs, pairs)
    @settings(max_examples=40, deadline=None)
    def test_count_equals_materialized_size(self, r, s, t):
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), r),
            Relation("S", ("B", "C"), s),
            Relation("T", ("A", "C"), t),
        ])
        assert count_join(query, database) == len(generic_join(query, database))


class TestGroupCount:
    def test_per_vertex_triangle_counts(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        per_a = group_count(query, database, group_by=("A",))
        materialized = generic_join(query, database)
        reference: dict[tuple, int] = {}
        for a, _, _ in materialized:
            reference[(a,)] = reference.get((a,), 0) + 1
        assert per_a == reference

    def test_group_by_pair(self, skew_triangle_100):
        query, database = skew_triangle_100
        per_ab = group_count(query, database, group_by=("A", "B"))
        materialized = generic_join(query, database)
        reference: dict[tuple, int] = {}
        for a, b, _ in materialized:
            reference[(a, b)] = reference.get((a, b), 0) + 1
        assert per_ab == reference

    def test_total_of_groups_equals_count(self, tight_triangle_100):
        query, database = tight_triangle_100
        per_a = group_count(query, database, group_by=("A",))
        assert sum(per_a.values()) == count_join(query, database)

    def test_unknown_group_variable_rejected(self, tight_triangle_100):
        query, database = tight_triangle_100
        with pytest.raises(ValueError):
            group_count(query, database, group_by=("Z",))

    def test_explicit_order_must_start_with_groups(self, tight_triangle_100):
        query, database = tight_triangle_100
        with pytest.raises(ValueError):
            group_count(query, database, group_by=("A",), order=("B", "A", "C"))


class TestSumProduct:
    def test_unit_weights_equal_count(self, tight_triangle_100):
        query, database = tight_triangle_100
        assert sum_product(query, database) == pytest.approx(
            count_join(query, database))

    def test_weighted_sum_matches_direct_computation(self, small_triangle_instance):
        query, database, expected = small_triangle_instance
        weights = {
            "R": lambda t: 2.0,
            "S": lambda t: float(t[0] + 1),
        }
        direct = 0.0
        for a, b, c in expected:
            direct += 2.0 * float(b + 1)
        assert sum_product(query, database, weights) == pytest.approx(direct)

    def test_friedgut_lhs_below_rhs(self, skew_triangle_100):
        # The SumProd value with delta-th powers is the LHS of Friedgut's
        # inequality; check it is below the RHS for the (1/2,1/2,1/2) cover.
        query, database = skew_triangle_100
        weights = {
            "R": lambda t: (1.0 + (t[0] % 3)) ** 0.5,
            "S": lambda t: 1.0,
            "T": lambda t: 1.0,
        }
        lhs = sum_product(query, database, weights)
        rhs = (sum((1.0 + (a % 3)) ** 0.5 for a, _ in database["R"]) ** 0.5
               * len(database["S"]) ** 0.5 * len(database["T"]) ** 0.5)
        # Not an exact Friedgut comparison (weights are already the powered
        # form), but monotonicity sanity: the aggregate is finite, positive,
        # and far below the product of relation sizes.
        assert 0 < lhs < len(database["R"]) * len(database["S"])
        assert rhs > 0
