"""Tests for Algorithm 3 (backtracking search under acyclic DC)."""

import pytest

from repro.bounds.modular import modular_bound
from repro.constraints.degree import (
    DegreeConstraint,
    DegreeConstraintSet,
    cardinality_constraints,
)
from repro.errors import ConstraintError
from repro.experiments.acyclic_dc import chain_instance
from repro.joins.backtracking import backtracking_join, backtracking_search
from repro.joins.generic_join import generic_join
from repro.joins.instrumentation import OperationCounter
from repro.query.atoms import triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestBacktrackingOnCardinalities:
    def test_equals_generic_join_on_triangle(self, tight_triangle_100):
        query, database = tight_triangle_100
        dc = cardinality_constraints(query, database)
        output = backtracking_join(query, database, dc)
        assert output == generic_join(query, database)

    def test_equals_generic_join_on_skew_triangle(self, skew_triangle_100):
        query, database = skew_triangle_100
        dc = cardinality_constraints(query, database)
        assert backtracking_join(query, database, dc) == generic_join(query, database)

    def test_search_result_is_superset_of_output(self, tight_triangle_100):
        query, database = tight_triangle_100
        dc = cardinality_constraints(query, database)
        search = backtracking_search(query, database, dc)
        output = backtracking_join(query, database, dc)
        search_reordered = search.reorder(query.variables)
        assert output.tuples <= search_reordered.tuples


class TestBacktrackingWithDegreeConstraints:
    def test_chain_query_correct(self):
        query, database, dc = chain_instance(num_r=40, fanout=3, seed=2)
        output = backtracking_join(query, database, dc)
        assert output == generic_join(query, database)

    def test_search_nodes_within_bound(self):
        query, database, dc = chain_instance(num_r=60, fanout=3, seed=4)
        counter = OperationCounter()
        backtracking_search(query, database, dc, counter=counter)
        bound = modular_bound(dc).bound
        # The number of internal search nodes is at most the sum over prefix
        # levels of the bound, which is <= (n+1) * bound; use that safe cap.
        assert counter.search_nodes <= (len(query.variables) + 1) * bound

    def test_explicit_compatible_order_accepted(self):
        query, database, dc = chain_instance(num_r=20, fanout=2, seed=5)
        output = backtracking_join(query, database, dc, order=("A", "B", "C", "D"))
        assert output == generic_join(query, database)

    def test_incompatible_order_rejected(self):
        query, database, dc = chain_instance(num_r=20, fanout=2, seed=5)
        with pytest.raises(ConstraintError):
            backtracking_search(query, database, dc, order=("D", "C", "B", "A"))

    def test_cyclic_dc_rejected(self, tight_triangle_100):
        query, database = tight_triangle_100
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2, guard="R"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("AB"), bound=2, guard="R"),
            DegreeConstraint.cardinality(("A", "C"), 10, guard="T"),
        ])
        with pytest.raises(ConstraintError):
            backtracking_search(query, database, dc)

    def test_uncovered_variable_rejected(self, tight_triangle_100):
        query, database = tight_triangle_100
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), 100, guard="R"),
        ])
        with pytest.raises(ConstraintError):
            backtracking_search(query, database, dc)

    def test_guard_by_relation_name(self):
        # Guards given as relation names (not edge keys) are resolved.
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), [(1, 2), (2, 2)]),
            Relation("S", ("B", "C"), [(2, 3)]),
            Relation("T", ("A", "C"), [(1, 3), (2, 3)]),
        ])
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), 2, guard="R"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=1, guard="S"),
        ])
        output = backtracking_join(query, database, dc)
        assert output == generic_join(query, database)

    def test_missing_guard_rejected(self, tight_triangle_100):
        query, database = tight_triangle_100
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), 100, guard="NoSuchRelation"),
            DegreeConstraint.cardinality(("B", "C"), 100, guard="S"),
            DegreeConstraint.cardinality(("A", "C"), 100, guard="T"),
        ])
        with pytest.raises(ConstraintError):
            backtracking_search(query, database, dc)
