"""Tests for Yannakakis' algorithm and semijoin reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.graphs import erdos_renyi_graph
from repro.errors import QueryError
from repro.joins.instrumentation import OperationCounter
from repro.joins.naive import nested_loop_join
from repro.joins.yannakakis import semijoin_reduce, yannakakis
from repro.query.atoms import Atom, ConjunctiveQuery, path_query
from repro.relational.database import Database
from repro.relational.relation import Relation


@pytest.fixture
def star_query_db():
    query = ConjunctiveQuery([
        Atom("R", ("A", "B")), Atom("S", ("A", "C")), Atom("T", ("A", "D")),
    ])
    database = Database([
        Relation("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)]),
        Relation("S", ("A", "C"), [(1, 100), (2, 200)]),
        Relation("T", ("A", "D"), [(1, 7), (4, 9)]),
    ])
    return query, database


class TestYannakakis:
    def test_star_query(self, star_query_db):
        query, database = star_query_db
        assert yannakakis(query, database) == nested_loop_join(query, database)

    def test_path_query_matches_naive(self):
        query = path_query(3)
        database = Database([
            Relation("E_1", ("A", "B"), erdos_renyi_graph(15, 40, seed=1).tuples),
            Relation("E_2", ("A", "B"), erdos_renyi_graph(15, 40, seed=2).tuples),
            Relation("E_3", ("A", "B"), erdos_renyi_graph(15, 40, seed=3).tuples),
        ])
        assert yannakakis(query, database) == nested_loop_join(query, database)

    def test_single_atom_query(self):
        query = ConjunctiveQuery([Atom("R", ("A", "B"))])
        database = Database([Relation("R", ("A", "B"), [(1, 2), (3, 4)])])
        assert yannakakis(query, database).tuples == frozenset({(1, 2), (3, 4)})

    def test_rejects_cyclic_query(self, tight_triangle_100):
        query, database = tight_triangle_100
        with pytest.raises(QueryError):
            yannakakis(query, database)

    def test_projection_head(self):
        query = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))],
                                 head=("A", "C"))
        database = Database([
            Relation("R", ("A", "B"), [(1, 2), (3, 2)]),
            Relation("S", ("B", "C"), [(2, 9)]),
        ])
        output = yannakakis(query, database)
        assert output.attributes == ("A", "C")
        assert output.tuples == frozenset({(1, 9), (3, 9)})

    def test_empty_input(self):
        query = path_query(2)
        database = Database([
            Relation("E_1", ("A", "B"), []),
            Relation("E_2", ("A", "B"), [(1, 2)]),
        ])
        assert yannakakis(query, database).is_empty()

    def test_counter_charged(self, star_query_db):
        query, database = star_query_db
        counter = OperationCounter()
        yannakakis(query, database, counter=counter)
        assert counter.total() > 0

    pairs = st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=15)

    @given(pairs, pairs, pairs)
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_on_random_chains(self, e1, e2, e3):
        query = ConjunctiveQuery([
            Atom("R", ("A", "B")), Atom("S", ("B", "C")), Atom("T", ("C", "D")),
        ])
        database = Database([
            Relation("R", ("A", "B"), e1),
            Relation("S", ("B", "C"), e2),
            Relation("T", ("C", "D"), e3),
        ])
        assert yannakakis(query, database) == nested_loop_join(query, database)


class TestSemijoinReduce:
    def test_reduced_relations_are_globally_consistent(self, star_query_db):
        query, database = star_query_db
        reduced = semijoin_reduce(query, database)
        output = nested_loop_join(query, database)
        # After full reduction every remaining tuple joins into some output.
        for i, atom in enumerate(query.atoms):
            key = query.edge_key(i)
            projected = output.columns(atom.variables)
            assert reduced[key].columns(atom.variables) == projected

    def test_reduction_never_grows_relations(self, star_query_db):
        query, database = star_query_db
        reduced = semijoin_reduce(query, database)
        for i, atom in enumerate(query.atoms):
            key = query.edge_key(i)
            assert len(reduced[key]) <= len(database.get(atom.relation))

    def test_rejects_cyclic(self, tight_triangle_100):
        query, database = tight_triangle_100
        with pytest.raises(QueryError):
            semijoin_reduce(query, database)
