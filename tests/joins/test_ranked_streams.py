"""Any-k ranked enumeration at the join-core level.

Direct tests of the two ranked executors beneath the engine: the WCOJ
priority frontier (``wcoj_stream(..., ranked=...)`` through both
intersection engines) and the annotated-join-tree enumeration of
:func:`repro.joins.yannakakis.yannakakis_ranked_stream` — exact prefix
agreement with sort-and-drain, the variable-order contract, and the
error surface.
"""

import random

import pytest

from repro.errors import QueryError
from repro.joins.generic_join import generic_join_stream
from repro.joins.leapfrog import leapfrog_stream
from repro.joins.yannakakis import yannakakis, yannakakis_ranked_stream
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.builder import sort_rows
from repro.query.semiring import count
from repro.query.terms import comparison
from repro.relational.database import Database
from repro.relational.relation import Relation


def random_database(seed: int, n: int = 18, rows: int = 80) -> Database:
    rng = random.Random(seed)
    rel = lambda name, cols: Relation(name, cols, {
        (rng.randrange(n), rng.randrange(n)) for _ in range(rows)
    })
    return Database([rel("R", ("a", "b")), rel("S", ("b", "c")),
                     rel("T", ("a", "c")), rel("U", ("c", "d"))])


CHAIN = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C"))])
PATH3 = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C")),
                          Atom("U", ("C", "D"))])
TRIANGLE = ConjunctiveQuery([Atom("R", ("A", "B")), Atom("S", ("B", "C")),
                             Atom("T", ("A", "C"))])


def drained(query, database, head, order_by, selections=()):
    rows = generic_join_stream(query, database, selections=selections)
    projected = sorted({tuple(row[query.variables.index(h)] for h in head)
                        for row in rows})
    return sort_rows(projected, head, order_by)


class TestWcojRanked:
    @pytest.mark.parametrize("stream", [generic_join_stream, leapfrog_stream])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_head_matches_drain(self, stream, seed):
        database = random_database(seed)
        head = ("A", "B", "C")
        keys = [("C", True), ("A", False)]
        got = list(stream(CHAIN, database, order=("C", "A", "B"),
                          head=head, ranked=keys))
        assert got == drained(CHAIN, database, head, keys)

    @pytest.mark.parametrize("stream", [generic_join_stream, leapfrog_stream])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_projected_head_matches_drain(self, stream, seed):
        database = random_database(seed)
        head = ("A", "C")
        keys = [("A", False)]
        got = list(stream(PATH3, database, order=("A", "C", "B", "D"),
                          head=head, ranked=keys))
        assert got == drained(PATH3, database, head, keys)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cyclic_query_matches_drain(self, seed):
        database = random_database(seed)
        head = ("A", "B", "C")
        keys = [("B", False), ("C", True)]
        got = list(generic_join_stream(TRIANGLE, database,
                                       order=("B", "C", "A"),
                                       head=head, ranked=keys))
        assert got == drained(TRIANGLE, database, head, keys)

    def test_selections_prune_inside_the_frontier(self):
        database = random_database(5)
        keys = [("B", True)]
        selections = [comparison("A", "<", "C")]
        got = list(generic_join_stream(
            CHAIN, database, order=("B", "A", "C"),
            head=("A", "B", "C"), ranked=keys, selections=selections))
        rows = [r for r in generic_join_stream(CHAIN, database)
                if r[0] < r[2]]
        assert got == sort_rows(sorted(rows), ("A", "B", "C"), keys)

    def test_empty_join_yields_nothing(self):
        database = Database([
            Relation("R", ("a", "b"), [(1, 2)]),
            Relation("S", ("b", "c"), [(9, 9)]),
        ])
        assert list(generic_join_stream(
            CHAIN, database, order=("A", "B", "C"),
            head=("A", "B", "C"), ranked=[("A", False)])) == []

    def test_prefix_is_lazy(self):
        database = random_database(6)
        head = ("A", "B", "C")
        keys = [("A", False)]
        stream = generic_join_stream(CHAIN, database, order=("A", "B", "C"),
                                     head=head, ranked=keys)
        want = drained(CHAIN, database, head, keys)
        got = [next(stream) for _ in range(3)]
        stream.close()
        assert got == want[:3]


class TestWcojRankedContract:
    def test_keys_must_be_query_variables(self):
        database = random_database(0)
        with pytest.raises(ValueError, match="not query variables"):
            list(generic_join_stream(CHAIN, database,
                                     order=("A", "B", "C"),
                                     head=("A", "B"), ranked=[("Z", False)]))

    def test_keys_must_be_head_variables(self):
        database = random_database(0)
        with pytest.raises(ValueError, match="not head variables"):
            list(generic_join_stream(CHAIN, database,
                                     order=("C", "A", "B"),
                                     head=("A", "B"), ranked=[("C", False)]))

    def test_order_must_lead_with_the_keys(self):
        database = random_database(0)
        with pytest.raises(ValueError, match="sort keys as a prefix"):
            list(generic_join_stream(CHAIN, database,
                                     order=("A", "B", "C"),
                                     head=("A", "B"), ranked=[("B", False)]))

    def test_ranked_rejects_aggregates(self):
        database = random_database(0)
        with pytest.raises(ValueError, match="aggregate"):
            list(generic_join_stream(CHAIN, database,
                                     order=("A", "B", "C"), head=("A",),
                                     aggregates=[count()],
                                     ranked=[("A", False)]))


class TestYannakakisRanked:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_head_matches_drain(self, seed):
        database = random_database(seed)
        head = ("A", "B", "C", "D")
        keys = [("C", True), ("A", False)]
        got = list(yannakakis_ranked_stream(PATH3, database, head, keys))
        expected = sort_rows(sorted(yannakakis(PATH3, database).tuples),
                             head, keys)
        assert got == expected

    @pytest.mark.parametrize("seed", [0, 1])
    def test_projected_head_deduplicates(self, seed):
        database = random_database(seed)
        head = ("A", "D")
        keys = [("D", False), ("A", True)]
        got = list(yannakakis_ranked_stream(PATH3, database, head, keys))
        projected = sorted({(a, d) for a, b, c, d
                            in yannakakis(PATH3, database).tuples})
        assert got == sort_rows(projected, head, keys)

    def test_cross_node_selection_filters_completions(self):
        database = random_database(3)
        head = ("A", "B", "C", "D")
        keys = [("B", False)]
        selections = [comparison("A", "<", "D")]
        got = list(yannakakis_ranked_stream(PATH3, database, head, keys,
                                            selections=selections))
        rows = [r for r in yannakakis(PATH3, database).tuples if r[0] < r[3]]
        assert got == sort_rows(sorted(rows), head, keys)

    def test_single_atom_query(self):
        database = random_database(4)
        q = ConjunctiveQuery([Atom("R", ("A", "B"))])
        got = list(yannakakis_ranked_stream(q, database, ("A", "B"),
                                            [("B", True)]))
        expected = sort_rows(sorted(database.get("R").tuples),
                             ("A", "B"), [("B", True)])
        assert got == expected

    def test_empty_reduction_yields_nothing(self):
        database = Database([
            Relation("R", ("a", "b"), [(1, 2)]),
            Relation("S", ("b", "c"), [(9, 9)]),
            Relation("U", ("c", "d"), [(9, 9)]),
        ])
        assert list(yannakakis_ranked_stream(PATH3, database,
                                             ("A", "B", "C", "D"),
                                             [("A", False)])) == []

    def test_cyclic_query_raises(self):
        database = random_database(0)
        with pytest.raises(QueryError, match="alpha-acyclic"):
            list(yannakakis_ranked_stream(TRIANGLE, database,
                                          ("A", "B", "C"), [("A", False)]))

    def test_needs_a_sort_key(self):
        database = random_database(0)
        with pytest.raises(QueryError, match="ORDER BY"):
            list(yannakakis_ranked_stream(CHAIN, database,
                                          ("A", "B", "C"), []))
