"""Tests for the exception hierarchy: every library error is a ReproError."""

import pytest

from repro import errors


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.SchemaError,
        errors.QueryError,
        errors.ParseError,
        errors.ConstraintError,
        errors.UnboundedQueryError,
        errors.BoundError,
        errors.LPError,
        errors.ProofError,
        errors.NotEntropicError,
    ])
    def test_subclasses_of_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_parse_error_is_query_error(self):
        assert issubclass(errors.ParseError, errors.QueryError)

    def test_unbounded_is_constraint_error(self):
        assert issubclass(errors.UnboundedQueryError, errors.ConstraintError)

    def test_lp_error_is_bound_error(self):
        assert issubclass(errors.LPError, errors.BoundError)

    def test_library_raises_catchable_base(self):
        from repro.relational.relation import Relation
        with pytest.raises(errors.ReproError):
            Relation("R", ("A", "A"), [])

    def test_parser_error_catchable_as_query_error(self):
        from repro.query.parser import parse_query
        with pytest.raises(errors.QueryError):
            parse_query("not a query")
