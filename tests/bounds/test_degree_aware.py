"""Tests for the bound dispatcher (output_size_bound)."""

import pytest

from repro.bounds.degree_aware import output_size_bound, worst_case_output_size
from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.datagen.worstcase import triangle_agm_tight_instance
from repro.joins.generic_join import generic_join
from repro.panda.example1 import example1_constraints, example1_query


class TestDispatch:
    def test_cardinalities_use_agm(self):
        query, database = triangle_agm_tight_instance(100)
        result = output_size_bound(query, database)
        assert result.method == "agm"
        assert result.bound >= len(generic_join(query, database)) - 1e-9

    def test_acyclic_degree_constraints_use_modular(self):
        query, database = triangle_agm_tight_instance(100)
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), 100, guard="R"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=3, guard="S"),
            DegreeConstraint(x=frozenset("A"), y=frozenset({"A", "C"}), bound=3, guard="T"),
        ])
        result = output_size_bound(query, database=database, dc=dc)
        assert result.method == "modular"
        assert result.bound == pytest.approx(100 * 3, rel=1e-6)

    def test_cyclic_degree_constraints_use_polymatroid(self):
        query = example1_query()
        dc = example1_constraints(64, 64, 64, 4, 4)
        # Make it cyclic by adding a reverse-direction constraint.
        dc.add(DegreeConstraint(x=frozenset("D"), y=frozenset("AD"), bound=4, guard="W"))
        result = output_size_bound(query, dc=dc)
        assert result.method == "polymatroid"

    def test_requires_database_or_constraints(self):
        with pytest.raises(ValueError):
            output_size_bound(triangle_agm_tight_instance(10)[0])

    def test_worst_case_output_size_helper(self):
        query, database = triangle_agm_tight_instance(100)
        assert worst_case_output_size(query, database) == pytest.approx(1000.0, rel=1e-6)
