"""Tests for the entropic-bound estimate."""

import pytest

from repro.bounds.entropic import entropic_bound_estimate
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.panda.example1 import example1_constraints


def triangle_dc(n=100):
    return DegreeConstraintSet(("A", "B", "C"), [
        DegreeConstraint.cardinality(("A", "B"), n, guard="R"),
        DegreeConstraint.cardinality(("B", "C"), n, guard="S"),
        DegreeConstraint.cardinality(("A", "C"), n, guard="T"),
    ])


class TestEntropicEstimate:
    def test_exact_for_three_variables(self):
        estimate = entropic_bound_estimate(triangle_dc())
        assert estimate.exact
        assert not estimate.used_zhang_yeung
        assert estimate.upper_log2 == pytest.approx(
            polymatroid_bound(triangle_dc()).log2_bound)

    def test_not_exact_for_four_variables(self):
        dc = example1_constraints(64, 64, 64, 4, 4)
        estimate = entropic_bound_estimate(dc)
        assert not estimate.exact
        assert estimate.used_zhang_yeung

    def test_zy_strengthening_never_looser(self):
        dc = example1_constraints(64, 64, 64, 4, 4)
        with_zy = entropic_bound_estimate(dc, use_zhang_yeung=True)
        without = entropic_bound_estimate(dc, use_zhang_yeung=False)
        assert with_zy.upper_log2 <= without.upper_log2 + 1e-6

    def test_upper_property(self):
        estimate = entropic_bound_estimate(triangle_dc(256))
        assert estimate.upper == pytest.approx(2 ** estimate.upper_log2)
