"""Tests for the polymatroid bound LP (68)."""

import math

import pytest

from repro.bounds.agm import agm_bound
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.degree import (
    DegreeConstraint,
    DegreeConstraintSet,
    cardinality_constraints,
)
from repro.datagen.worstcase import triangle_agm_tight_instance
from repro.errors import UnboundedQueryError
from repro.panda.example1 import example1_constraints


class TestCardinalityOnly:
    def test_matches_agm_on_triangle(self):
        query, database = triangle_agm_tight_instance(144)
        dc = cardinality_constraints(query, database)
        poly = polymatroid_bound(dc)
        agm = agm_bound(query, database)
        assert poly.log2_bound == pytest.approx(agm.log2_bound, abs=1e-6)

    def test_single_relation(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A", "B"), 50, guard="R"),
        ])
        assert polymatroid_bound(dc).bound == pytest.approx(50.0)

    def test_cartesian_product_of_two_relations(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A",), 10, guard="R"),
            DegreeConstraint.cardinality(("B",), 20, guard="S"),
        ])
        assert polymatroid_bound(dc).bound == pytest.approx(200.0)


class TestFunctionalDependencies:
    def test_fd_tightens_triangle_bound(self):
        n = 100
        base = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), n, guard="R"),
            DegreeConstraint.cardinality(("B", "C"), n, guard="S"),
            DegreeConstraint.cardinality(("A", "C"), n, guard="T"),
        ])
        with_fd = DegreeConstraintSet(("A", "B", "C"), list(base.constraints) + [
            DegreeConstraint.functional_dependency(("B",), ("C",), guard="S"),
        ])
        loose = polymatroid_bound(base)
        tight = polymatroid_bound(with_fd)
        assert loose.bound == pytest.approx(n ** 1.5, rel=1e-6)
        # With B -> C the output is at most |R| = n.
        assert tight.bound == pytest.approx(n, rel=1e-6)

    def test_key_constraint_gives_linear_bound(self):
        # R(A,B) with A a key joined with S(B,C): |output| <= |R| * deg_S(C|B).
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), 64, guard="R"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=4, guard="S"),
        ])
        assert polymatroid_bound(dc).bound == pytest.approx(64 * 4, rel=1e-6)


class TestGeneralDegreeConstraints:
    def test_example1_bound_matches_equation_75(self):
        n = 128
        deg = 4
        dc = example1_constraints(n, n, n, deg, deg)
        poly = polymatroid_bound(dc)
        expected_log = 0.5 * (3 * math.log2(n) + 2 * math.log2(deg))
        assert poly.log2_bound == pytest.approx(expected_log, abs=1e-6)

    def test_tight_constraints_reported(self):
        dc = example1_constraints(128, 128, 128, 4, 4)
        poly = polymatroid_bound(dc)
        assert len(poly.tight_constraints) >= 1

    def test_optimal_h_is_polymatroid_in_hdc(self):
        dc = example1_constraints(64, 64, 64, 4, 4)
        poly = polymatroid_bound(dc)
        h = poly.optimal_h
        assert h.is_polymatroid(tolerance=1e-6)
        for constraint in dc:
            assert (h(constraint.y) - h(constraint.x)
                    <= constraint.log_bound + 1e-6)

    def test_zhang_yeung_strengthening_never_increases(self):
        dc = example1_constraints(64, 64, 64, 4, 4)
        plain = polymatroid_bound(dc, use_zhang_yeung=False)
        strengthened = polymatroid_bound(dc, use_zhang_yeung=True)
        assert strengthened.log2_bound <= plain.log2_bound + 1e-6

    def test_unbounded_constraints_rejected(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=4, guard="S"),
        ])
        with pytest.raises(UnboundedQueryError):
            polymatroid_bound(dc)

    def test_lp_sizes_reported(self):
        dc = example1_constraints(64, 64, 64, 4, 4)
        poly = polymatroid_bound(dc)
        assert poly.num_lp_variables == 2 ** 4 - 1
        assert poly.num_lp_constraints > poly.num_lp_variables
