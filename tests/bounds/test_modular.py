"""Tests for the modular LP (54), its dual (57), and Proposition 4.4."""

import pytest

from repro.bounds.modular import modular_bound, modular_bound_dual
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.errors import UnboundedQueryError
from repro.experiments.bound_lps import random_acyclic_dc


def chain_dc(n_r=64, fanout=4):
    return DegreeConstraintSet(("A", "B", "C", "D"), [
        DegreeConstraint.cardinality(("A", "B"), n_r, guard="R"),
        DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=fanout, guard="S"),
        DegreeConstraint(x=frozenset("C"), y=frozenset("CD"), bound=fanout, guard="T"),
    ])


class TestModularPrimal:
    def test_chain_bound_is_product(self):
        bound = modular_bound(chain_dc(64, 4))
        assert bound.bound == pytest.approx(64 * 4 * 4, rel=1e-6)

    def test_vertex_values_sum_to_bound(self):
        bound = modular_bound(chain_dc(64, 4))
        assert sum(bound.vertex_values.values()) == pytest.approx(bound.log2_bound)

    def test_modular_function_is_modular(self):
        dc = chain_dc()
        bound = modular_bound(dc)
        f = bound.modular_function(dc.variables)
        assert f.is_modular()
        assert f.total() == pytest.approx(bound.log2_bound)

    def test_unbounded_rejected(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=4, guard="S"),
        ])
        with pytest.raises(UnboundedQueryError):
            modular_bound(dc)

    def test_lp_size_is_polynomial(self):
        dc = chain_dc()
        bound = modular_bound(dc)
        assert bound.num_lp_variables == len(dc.variables)
        assert bound.num_lp_constraints == len(dc)


class TestDual:
    def test_strong_duality(self):
        dc = chain_dc(128, 3)
        primal = modular_bound(dc)
        dual = modular_bound_dual(dc)
        assert primal.log2_bound == pytest.approx(dual.log2_bound, abs=1e-6)

    def test_dual_weights_cover_every_variable(self):
        dc = chain_dc()
        dual = modular_bound_dual(dc)
        for variable in dc.variables:
            total = sum(
                dual.dual_weights[i]
                for i, constraint in enumerate(dc)
                if variable in constraint.free_variables
            )
            assert total >= 1.0 - 1e-6

    def test_dual_generalizes_agm_for_cardinalities(self):
        # With only cardinality constraints the dual LP (57) is the AGM LP.
        n = 100
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), n, guard="R"),
            DegreeConstraint.cardinality(("B", "C"), n, guard="S"),
            DegreeConstraint.cardinality(("A", "C"), n, guard="T"),
        ])
        dual = modular_bound_dual(dc)
        assert dual.bound == pytest.approx(n ** 1.5, rel=1e-6)
        assert all(w == pytest.approx(0.5, abs=1e-6) for w in dual.dual_weights.values())

    def test_uncovered_variable_rejected(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A",), 4, guard="R"),
        ])
        with pytest.raises(UnboundedQueryError):
            modular_bound_dual(dc)


class TestProposition44:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_modular_equals_polymatroid_for_acyclic(self, n):
        dc = random_acyclic_dc(n, num_constraints=4, seed=100 + n)
        assert dc.is_acyclic()
        assert modular_bound(dc).log2_bound == pytest.approx(
            polymatroid_bound(dc).log2_bound, abs=1e-5)

    def test_cyclic_dc_modular_can_differ(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A",), 16, guard="GA"),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=4, guard="G1"),
            DegreeConstraint(x=frozenset("B"), y=frozenset("AB"), bound=2, guard="G2"),
        ])
        assert not dc.is_acyclic()
        modular = modular_bound(dc).log2_bound
        poly = polymatroid_bound(dc).log2_bound
        # For cyclic DC the modular LP may undercut the polymatroid bound.
        assert modular <= poly + 1e-9
        assert poly - modular > 0.5
