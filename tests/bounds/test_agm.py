"""Tests for the AGM bound."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.agm import agm_bound, agm_bound_from_sizes, rho_star
from repro.datagen.worstcase import triangle_agm_tight_instance, triangle_skew_instance
from repro.errors import BoundError
from repro.joins.generic_join import generic_join
from repro.query.atoms import (
    clique_query,
    cycle_query,
    loomis_whitney_query,
    triangle_query,
)
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestRhoStar:
    def test_known_values(self):
        assert rho_star(triangle_query()) == pytest.approx(1.5)
        assert rho_star(cycle_query(4)) == pytest.approx(2.0)
        assert rho_star(clique_query(4)) == pytest.approx(2.0)
        assert rho_star(loomis_whitney_query(4)) == pytest.approx(4.0 / 3.0)


class TestAgmFromSizes:
    def test_balanced_triangle(self):
        bound = agm_bound_from_sizes(triangle_query().hypergraph(),
                                     {"R": 100, "S": 100, "T": 100})
        assert bound.bound == pytest.approx(1000.0)
        assert bound.log2_bound == pytest.approx(math.log2(1000.0))

    def test_skewed_sizes_use_vertex_cover(self):
        bound = agm_bound_from_sizes(triangle_query().hypergraph(),
                                     {"R": 10, "S": 10, "T": 100000})
        # Optimal is alpha=beta=1, gamma=0: bound = 100.
        assert bound.bound == pytest.approx(100.0)

    def test_empty_relation_gives_zero(self):
        bound = agm_bound_from_sizes(triangle_query().hypergraph(),
                                     {"R": 0, "S": 100, "T": 100})
        assert bound.bound == 0.0
        assert not bound.permits(1)
        assert bound.permits(0)

    def test_size_one_relations(self):
        bound = agm_bound_from_sizes(triangle_query().hypergraph(),
                                     {"R": 1, "S": 1, "T": 1})
        assert bound.bound == pytest.approx(1.0)

    def test_missing_size_rejected(self):
        with pytest.raises(BoundError):
            agm_bound_from_sizes(triangle_query().hypergraph(), {"R": 10})

    def test_negative_size_rejected(self):
        with pytest.raises(BoundError):
            agm_bound_from_sizes(triangle_query().hypergraph(),
                                 {"R": -1, "S": 1, "T": 1})

    def test_permits(self):
        bound = agm_bound_from_sizes(triangle_query().hypergraph(),
                                     {"R": 100, "S": 100, "T": 100})
        assert bound.permits(1000)
        assert not bound.permits(1001)


class TestAgmOnDatabases:
    def test_tight_instance_achieves_bound(self):
        query, database = triangle_agm_tight_instance(100)
        bound = agm_bound(query, database)
        actual = len(generic_join(query, database))
        assert actual == pytest.approx(bound.bound, rel=1e-9)

    def test_skew_instance_far_below_bound(self):
        query, database = triangle_skew_instance(100)
        bound = agm_bound(query, database)
        actual = len(generic_join(query, database))
        assert actual <= bound.bound
        assert actual < bound.bound / 3

    def test_cover_is_reported(self):
        query, database = triangle_agm_tight_instance(100)
        bound = agm_bound(query, database)
        assert set(bound.cover.keys()) == {"R", "S", "T"}
        assert query.hypergraph().is_cover(bound.cover)

    def test_self_join_uses_each_atom_size(self):
        # Triangle counting on one edge relation: all three atoms same size.
        edges = [(i, (i + 1) % 5) for i in range(5)]
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), edges),
            Relation("S", ("B", "C"), edges),
            Relation("T", ("A", "C"), edges),
        ])
        bound = agm_bound(query, database)
        assert bound.bound == pytest.approx(len(edges) ** 1.5)


class TestAgmUpperBoundsOutputProperty:
    @given(
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=20),
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=20),
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_never_exceeds_bound(self, r_tuples, s_tuples, t_tuples):
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), r_tuples),
            Relation("S", ("B", "C"), s_tuples),
            Relation("T", ("A", "C"), t_tuples),
        ])
        bound = agm_bound(query, database)
        actual = len(generic_join(query, database))
        assert bound.permits(actual)
