"""Clean twin of layering_bad (scanned as a *high*-layer module).

Downward imports only; numpy is fine because the high layer is numeric.
The TYPE_CHECKING import of an upper module is exempt by design.
"""

from typing import TYPE_CHECKING

import numpy as np

from repro.low.util import helper

if TYPE_CHECKING:
    from repro.apps.cli import App  # erased at runtime: exempt


def run(app: "App"):
    return helper(np, app)
