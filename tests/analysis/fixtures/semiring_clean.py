"""Clean twin of semiring_bad: full protocol, all-gated product rules."""

COUNT = Semiring("count", zero=0, plus=sum, lift=int, one=1, times=sum)
register_semiring(COUNT)

register_semiring(Semiring("max", zero=None, plus=max, lift=float))


class HonestRing(Semiring):
    has_inverse = True

    def negate(self, value):
        return -value


def product_semiring(factors):
    absorbing = all(f.has_absorbing for f in factors)
    if all(f.has_product for f in factors):
        def times(a, b):
            return tuple(x * y for x, y in zip(a, b))
    if all(f.has_inverse for f in factors):
        def negate(value):
            return tuple(-v for v in value)
    return absorbing
