"""Clean twin of tracer_bad: null-object discipline throughout."""


class Runner:
    def __init__(self, tracer=None):
        # The one allowed seam: constructors map None to the null object.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(self, rows):
        if self.tracer.enabled:
            self.tracer.event("scan")
        return list(rows)


def hot_path(tracer, rows):
    if tracer.enabled:
        tracer.event("scan")
    return rows
