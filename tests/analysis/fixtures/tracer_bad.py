"""Seeded tracer-discipline violations: optional-tracer style guards."""


def hot_path(tracer, rows):
    if tracer is not None:  # identity test outside __init__
        tracer.event("scan")
    if isinstance(tracer, Tracer):  # type test outside __init__
        tracer.event("typed")
    return rows


class Runner:
    def run(self, rows):
        if self.tracer is None:  # identity test on an attribute
            return rows
        return list(rows)
