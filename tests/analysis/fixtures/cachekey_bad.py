"""Seeded cache-key violations, scanned as repro.engine.session.

Three distinct breaks: ``backend`` never reaches the key tuple,
``stream`` forgets to forward ``ranked_mode`` to ``_prepare``, and
``execute_many`` grows a ``fresh_axis`` that ``_prepare`` does not even
accept.
"""


class Engine:
    def _prepare(self, query, mode, aggregate_mode="auto",
                 ranked_mode="auto", backend="python"):
        key = (query, mode, aggregate_mode, ranked_mode)  # backend missing
        return key

    def execute(self, query, mode="auto", limit=None, counter=None,
                aggregate_mode="auto", ranked_mode="auto",
                backend="python"):
        return self._prepare(query, mode, aggregate_mode=aggregate_mode,
                             ranked_mode=ranked_mode, backend=backend)

    def stream(self, query, mode="auto", aggregate_mode="auto",
               ranked_mode="auto", backend="python"):
        return self._prepare(query, mode, aggregate_mode=aggregate_mode,
                             backend=backend)  # ranked_mode not forwarded

    def execute_many(self, queries, mode="auto", fresh_axis="auto",
                     aggregate_mode="auto", ranked_mode="auto",
                     backend="python"):
        return [self._prepare(q, mode, aggregate_mode=aggregate_mode,
                              ranked_mode=ranked_mode, backend=backend)
                for q in queries]
