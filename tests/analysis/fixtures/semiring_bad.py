"""Seeded semiring-protocol violations.

Dynamic registration, an incomplete monoid, times without one, a
subclass overriding negate alone, and product derivations gated on
any(...).
"""


def make_algebra():
    return object()


register_semiring(make_algebra())  # not statically auditable

MISSING_MONOID = Semiring("m", zero=0, plus=max)  # no lift
register_semiring(MISSING_MONOID)

register_semiring(Semiring("t", zero=0, plus=max, lift=int,
                           times=max))  # times without one


class LopsidedRing(Semiring):
    def negate(self, value):  # has_inverse not updated to match
        return -value


def product_semiring(factors):
    times = any(f.has_product for f in factors)  # any: one speaks for all
    if any(f.has_inverse for f in factors):
        def negate(value):
            return tuple(-v for v in value)
    return times
