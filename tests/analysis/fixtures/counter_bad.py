"""Seeded counter-honesty violations: three uncharged tuple walks."""


def scan(relation, out):
    for t in relation.tuples:  # loop, never charges
        out.append(t)
    return out


def project(rows):
    return [t[:2] for t in rows]  # comprehension, never charges


def fold(sub, np):
    origins = sub["origins"]
    return np.bincount(origins)  # vectorized fold, never charges
