"""Clean twin of counter_bad: every walk charges on its path."""


def scan(relation, counter, out):
    for t in relation.tuples:
        counter.charge(tuples_scanned=1)
        out.append(t)
    return out


def project(rows, counter):
    out = [t[:2] for t in rows]
    counter.charge(tuples_scanned=len(out))
    return out


def fold(sub, np, counter):
    origins = sub["origins"]
    counter.charge(intersection_steps=len(origins))
    return np.bincount(origins)
