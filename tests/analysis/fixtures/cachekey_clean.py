"""Clean twin of cachekey_bad: every axis reaches the key everywhere."""


class Engine:
    def _prepare(self, query, mode, aggregate_mode="auto",
                 ranked_mode="auto", backend="python"):
        key = (query, mode, aggregate_mode, ranked_mode, backend)
        return key

    def execute(self, query, mode="auto", limit=None, counter=None,
                aggregate_mode="auto", ranked_mode="auto",
                backend="python"):
        return self._prepare(query, mode, aggregate_mode=aggregate_mode,
                             ranked_mode=ranked_mode, backend=backend)

    def stream(self, query, mode="auto", aggregate_mode="auto",
               ranked_mode="auto", backend="python"):
        return self._prepare(query, mode, aggregate_mode=aggregate_mode,
                             ranked_mode=ranked_mode, backend=backend)

    def execute_many(self, queries, mode="auto", aggregate_mode="auto",
                     ranked_mode="auto", backend="python"):
        return [self._prepare(q, mode, aggregate_mode=aggregate_mode,
                              ranked_mode=ranked_mode, backend=backend)
                for q in queries]
