"""Seeded layering violations (scanned as a *low*-layer module).

Upward import plus a numeric-stack import in a non-numeric layer.
"""

import numpy as np  # numeric stack in a non-numeric layer

from repro.high.engine import run  # upward edge


def helper():
    from repro.high.engine import hot_path  # upward edge, lazy
    return hot_path(run, np)
