"""Driver behaviour: suppressions, baseline round-trip, CLI contract."""

import json
import os

from tools.analysis.checkers.counter_honesty import CounterHonestyChecker
from tools.analysis.core import (
    AnalysisDriver,
    FileContext,
    iter_python_files,
    load_baseline,
    write_baseline,
)
from tools.analysis.layers import _parse_toml_subset, parse_layers
from tools.analysis.__main__ import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

_VIOLATION = """
def scan(relation, out):
    for t in relation.tuples:
        out.append(t)
    return out
"""

_SUPPRESSED = """
def scan(relation, out):
    for t in relation.tuples:  # lint: disable=counter-honesty -- index build charged at registration
        out.append(t)
    return out
"""

_NO_REASON = """
def scan(relation, out):
    for t in relation.tuples:  # lint: disable=counter-honesty
        out.append(t)
    return out
"""


def _run(tmp_path, source, baseline=None):
    target = tmp_path / "src" / "repro" / "joins" / "mod.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    driver = AnalysisDriver([CounterHonestyChecker()], baseline)
    return driver.run(str(tmp_path), [str(target)])


def test_unsuppressed_finding_fails(tmp_path):
    result = _run(tmp_path, _VIOLATION)
    assert not result.clean
    assert [f.rule for f in result.findings] == ["counter-honesty"]
    assert result.findings[0].path == "src/repro/joins/mod.py"


def test_suppression_with_reason_silences(tmp_path):
    result = _run(tmp_path, _SUPPRESSED)
    assert result.clean
    assert len(result.suppressed) == 1
    finding, reason = result.suppressed[0]
    assert finding.rule == "counter-honesty"
    assert reason == "index build charged at registration"


def test_suppression_without_reason_is_itself_a_finding(tmp_path):
    result = _run(tmp_path, _NO_REASON)
    assert not result.clean
    assert [f.rule for f in result.findings] == ["suppression"]
    assert "no reason" in result.findings[0].message


def test_baseline_round_trip(tmp_path):
    first = _run(tmp_path, _VIOLATION)
    assert not first.clean
    baseline_path = tmp_path / "baseline.json"
    count = write_baseline(str(baseline_path), first.findings)
    assert count == 1
    entries = load_baseline(str(baseline_path))
    second = _run(tmp_path, _VIOLATION, baseline=entries)
    assert second.clean
    assert len(second.baselined) == 1


def test_fingerprint_survives_line_shifts(tmp_path):
    first = _run(tmp_path, _VIOLATION)
    shifted = "# a new leading comment\n\n" + _VIOLATION
    second = _run(tmp_path, shifted)
    assert (first.findings[0].fingerprint()
            == second.findings[0].fingerprint())
    assert first.findings[0].line != second.findings[0].line


def test_one_parse_per_file():
    ctx = FileContext("src/repro/joins/mod.py", _VIOLATION)
    assert ctx.module_name == "repro.joins.mod"
    assert ctx.tree is not None


def test_iter_python_files_skips_pycache(tmp_path):
    (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__" / "b.py").write_text("x = 2\n")
    found = list(iter_python_files(str(tmp_path), ["pkg"]))
    assert [os.path.basename(p) for p in found] == ["a.py"]


# -- CLI contract (the same invocations CI runs) ------------------------

def test_cli_clean_on_the_repo(capsys):
    assert main([]) == 0
    err = capsys.readouterr().err
    assert "0 finding(s)" in err


def test_cli_json_report_shape(capsys):
    assert main(["--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is True
    assert report["files"] > 0
    assert set(report["rules"]) == {
        "import-layering", "counter-honesty", "cache-key",
        "semiring-protocol", "tracer-discipline",
    }
    for entry in report["suppressed"]:
        assert entry["reason"]  # every repo suppression carries a reason


def test_cli_rejects_baseline_entries_in_gated_packages(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps([
        "counter-honesty::src/repro/joins/generic_join.py::whatever",
    ]))
    assert main(["--baseline", str(bad)]) == 1
    assert "forbidden" in capsys.readouterr().err


def test_cli_unknown_rule_is_usage_error(capsys):
    assert main(["--rules", "no-such-rule"]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "counter-honesty" in out and "cache-key" in out


def test_repo_baseline_is_empty():
    baseline = load_baseline(
        os.path.join(REPO_ROOT, "tools", "analysis", "baseline.json"))
    assert baseline == set()


# -- layers.toml parsing ------------------------------------------------

def test_toml_subset_parser_agrees_with_tomllib():
    import tomllib
    path = os.path.join(REPO_ROOT, "tools", "analysis", "layers.toml")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    assert _parse_toml_subset(text) == tomllib.loads(text)


def test_real_layer_config_assigns_core_modules():
    path = os.path.join(REPO_ROOT, "tools", "analysis", "layers.toml")
    with open(path, encoding="utf-8") as handle:
        config = parse_layers(handle.read())
    joins = config.layer_of("repro.joins.generic_join")
    instrumentation = config.layer_of("repro.joins.instrumentation")
    engine = config.layer_of("repro.engine.session")
    assert joins is not None and engine is not None
    # Longest-prefix wins: instrumentation is carved out below joins.
    assert instrumentation is not None
    assert instrumentation.rank < joins.rank
    # The physical layer is the numeric one; planner layers are not.
    assert engine.numeric
    assert not config.layer_of("repro.covers.lp").numeric
