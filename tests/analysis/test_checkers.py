"""Each rule demonstrably fails its seeded fixture and passes the twin.

Fixture sources live in ``fixtures/`` (never imported, only parsed);
each is wrapped in a :class:`FileContext` under a repo path the checker's
default prefixes cover, so these tests exercise exactly the
configuration the CI run uses.
"""

import os

from tools.analysis.checkers.cache_key import CacheKeyChecker
from tools.analysis.checkers.counter_honesty import CounterHonestyChecker
from tools.analysis.checkers.layering import LayeringChecker
from tools.analysis.checkers.semiring_protocol import SemiringProtocolChecker
from tools.analysis.checkers.tracer_discipline import TracerDisciplineChecker
from tools.analysis.core import FileContext, Project
from tools.analysis.layers import parse_layers

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")

_LAYERS = parse_layers("""
[[layer]]
name = "low"
modules = ["repro.low"]

[[layer]]
name = "high"
modules = ["repro.high"]
numeric = true

[[layer]]
name = "apps"
modules = ["repro.apps"]
""")


def _ctx(fixture: str, relpath: str) -> FileContext:
    with open(os.path.join(FIXTURES, fixture), encoding="utf-8") as handle:
        return FileContext(relpath, handle.read())


def _messages(findings):
    return [f.message for f in findings]


# -- counter-honesty ----------------------------------------------------

def test_counter_honesty_fails_seeded_fixture():
    ctx = _ctx("counter_bad.py", "src/repro/joins/fixture.py")
    findings = list(CounterHonestyChecker().check_file(ctx))
    assert len(findings) == 3
    messages = " ".join(_messages(findings))
    assert "scan" in messages
    assert "project" in messages
    assert "vectorized fold" in messages


def test_counter_honesty_passes_clean_twin():
    ctx = _ctx("counter_clean.py", "src/repro/joins/fixture.py")
    assert list(CounterHonestyChecker().check_file(ctx)) == []


def test_counter_honesty_ignores_unmeasured_packages():
    ctx = _ctx("counter_bad.py", "src/repro/relational/fixture.py")
    assert list(CounterHonestyChecker().check_file(ctx)) == []


# -- import-layering ----------------------------------------------------

def test_layering_fails_seeded_fixture():
    ctx = _ctx("layering_bad.py", "src/repro/low/bad.py")
    findings = list(LayeringChecker(_LAYERS).check_file(ctx))
    messages = _messages(findings)
    assert any("numpy" in m for m in messages)
    upward = [m for m in messages if "higher layer 'high'" in m]
    assert len(upward) == 2
    assert any("(lazy)" in m for m in upward)


def test_layering_passes_clean_twin():
    ctx = _ctx("layering_clean.py", "src/repro/high/clean.py")
    assert list(LayeringChecker(_LAYERS).check_file(ctx)) == []


def test_layering_skips_modules_outside_the_dag():
    ctx = _ctx("layering_bad.py", "tests/somewhere/bad.py")
    assert list(LayeringChecker(_LAYERS).check_file(ctx)) == []


# -- cache-key ----------------------------------------------------------

def test_cache_key_fails_seeded_fixture():
    ctx = _ctx("cachekey_bad.py", "src/repro/engine/session.py")
    findings = list(CacheKeyChecker().finalize(Project([ctx])))
    messages = _messages(findings)
    assert any("'backend'" in m and "plan-cache key" in m for m in messages)
    assert any("without forwarding dispatch axis 'ranked_mode'" in m
               for m in messages)
    assert any("'fresh_axis'" in m and "not a parameter" in m
               for m in messages)


def test_cache_key_passes_clean_twin():
    ctx = _ctx("cachekey_clean.py", "src/repro/engine/session.py")
    assert list(CacheKeyChecker().finalize(Project([ctx]))) == []


def test_cache_key_silent_when_session_module_absent():
    ctx = _ctx("cachekey_bad.py", "src/repro/engine/other.py")
    assert list(CacheKeyChecker().finalize(Project([ctx]))) == []


# -- semiring-protocol --------------------------------------------------

def test_semiring_protocol_fails_seeded_fixture():
    ctx = _ctx("semiring_bad.py", "src/repro/query/fixture.py")
    messages = _messages(SemiringProtocolChecker().check_file(ctx))
    assert any("not a statically visible" in m for m in messages)
    assert any("omits the fold monoid" in m and "lift" in m
               for m in messages)
    assert any("declares 'times' without 'one'" in m for m in messages)
    assert any("LopsidedRing" in m for m in messages)
    assert any("any(...)" in m for m in messages)


def test_semiring_protocol_passes_clean_twin():
    ctx = _ctx("semiring_clean.py", "src/repro/query/fixture.py")
    assert list(SemiringProtocolChecker().check_file(ctx)) == []


# -- tracer-discipline --------------------------------------------------

def test_tracer_discipline_fails_seeded_fixture():
    ctx = _ctx("tracer_bad.py", "src/repro/engine/fixture.py")
    findings = list(TracerDisciplineChecker().check_file(ctx))
    assert len(findings) == 3
    messages = _messages(findings)
    assert any("identity test" in m for m in messages)
    assert any("isinstance test" in m for m in messages)


def test_tracer_discipline_passes_clean_twin():
    ctx = _ctx("tracer_clean.py", "src/repro/engine/fixture.py")
    assert list(TracerDisciplineChecker().check_file(ctx)) == []
