"""Make ``tools.analysis`` importable when tests run with PYTHONPATH=src.

The analysis framework lives at the repo root (``tools/``), outside the
``src`` layout, so the test process needs the root on ``sys.path``.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")
