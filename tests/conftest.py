"""Shared fixtures: small canonical instances used across the test suite."""

from __future__ import annotations

import pytest

from repro.constraints.degree import cardinality_constraints
from repro.datagen.worstcase import (
    triangle_agm_tight_instance,
    triangle_skew_instance,
)
from repro.query.atoms import triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


@pytest.fixture
def small_triangle_instance():
    """A tiny hand-written triangle instance with a known answer.

    R = {(1,1), (1,2), (2,1)}, S = {(1,1), (2,1), (1,3)}, T = {(1,1), (2,3), (1,3)}.
    Triangles (a, b, c) with (a,b) in R, (b,c) in S, (a,c) in T:
      (1,1,1): R ok, S ok, T ok          -> yes
      (1,2,1): R ok, S(2,1) ok, T(1,1)   -> yes
      (2,1,1): R ok, S(1,1) ok, T(2,1)?  -> no
      (1,1,3): R ok, S(1,3) ok, T(1,3)   -> yes
      (2,1,3): R ok, S(1,3) ok, T(2,3)   -> yes
    """
    r = Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 1)])
    s = Relation("S", ("B", "C"), [(1, 1), (2, 1), (1, 3)])
    t = Relation("T", ("A", "C"), [(1, 1), (2, 3), (1, 3)])
    query = triangle_query()
    database = Database([r, s, t])
    expected = {(1, 1, 1), (1, 2, 1), (1, 1, 3), (2, 1, 3)}
    return query, database, expected


@pytest.fixture
def tight_triangle_100():
    """The AGM-tight triangle instance with ~100 tuples per relation."""
    return triangle_agm_tight_instance(100)


@pytest.fixture
def skew_triangle_100():
    """The skewed (star) triangle instance with ~100 tuples per relation."""
    return triangle_skew_instance(100)


@pytest.fixture
def tight_triangle_dc(tight_triangle_100):
    """Cardinality constraints derived from the tight triangle instance."""
    query, database = tight_triangle_100
    return cardinality_constraints(query, database)
