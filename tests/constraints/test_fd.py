"""Tests for functional dependencies."""

import pytest

from repro.constraints.fd import (
    FunctionalDependency,
    fd_closure,
    fds_to_constraints,
    implies,
    keys_of,
    minimal_cover_is_acyclic,
)
from repro.errors import ConstraintError


class TestFunctionalDependency:
    def test_construction(self):
        fd = FunctionalDependency(("A",), ("B", "C"))
        assert fd.determinant == frozenset({"A"})
        assert fd.dependent == frozenset({"B", "C"})
        assert "A -> B,C" == str(fd) or "A ->" in str(fd)

    def test_empty_sides_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency((), ("B",))
        with pytest.raises(ConstraintError):
            FunctionalDependency(("A",), ())

    def test_trivial_and_simple(self):
        assert FunctionalDependency(("A", "B"), ("A",)).is_trivial
        assert FunctionalDependency(("A",), ("B",)).is_simple
        assert not FunctionalDependency(("A", "B"), ("C",)).is_simple

    def test_to_degree_constraint(self):
        c = FunctionalDependency(("A",), ("B",)).to_degree_constraint(guard="R")
        assert c.bound == 1
        assert c.x == frozenset({"A"})
        assert c.y == frozenset({"A", "B"})
        assert c.guard == "R"


class TestClosure:
    FDS = [
        FunctionalDependency(("A",), ("B",)),
        FunctionalDependency(("B",), ("C",)),
        FunctionalDependency(("C", "D"), ("E",)),
    ]

    def test_transitive_closure(self):
        assert fd_closure(("A",), self.FDS) == frozenset({"A", "B", "C"})

    def test_closure_with_composite_determinant(self):
        assert fd_closure(("A", "D"), self.FDS) == frozenset({"A", "B", "C", "D", "E"})

    def test_implies(self):
        assert implies(self.FDS, FunctionalDependency(("A",), ("C",)))
        assert not implies(self.FDS, FunctionalDependency(("C",), ("A",)))

    def test_keys_of(self):
        keys = keys_of(("A", "B", "C"), [
            FunctionalDependency(("A",), ("B",)),
            FunctionalDependency(("B",), ("C",)),
        ])
        assert keys == [frozenset({"A"})]

    def test_keys_of_multiple_keys(self):
        keys = keys_of(("A", "B"), [
            FunctionalDependency(("A",), ("B",)),
            FunctionalDependency(("B",), ("A",)),
        ])
        assert frozenset({"A"}) in keys and frozenset({"B"}) in keys


class TestConversionAndCycles:
    def test_fds_to_constraints_drops_trivial(self):
        dc = fds_to_constraints(("A", "B"), [
            FunctionalDependency(("A",), ("B",)),
            FunctionalDependency(("A", "B"), ("A",)),
        ])
        assert len(dc) == 1

    def test_minimal_cover_acyclicity(self):
        acyclic = [FunctionalDependency(("A",), ("B",)),
                   FunctionalDependency(("B",), ("C",))]
        cyclic = acyclic + [FunctionalDependency(("C",), ("A",))]
        assert minimal_cover_is_acyclic(acyclic)
        assert not minimal_cover_is_acyclic(cyclic)
