"""Tests for boundedness and acyclification (Proposition 5.2, Corollary 5.3)."""

import pytest

from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.acyclify import (
    acyclify,
    acyclify_simple_fds,
    all_variables_bound,
    best_acyclic_weakening,
    bound_variables,
    require_bounded,
)
from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.errors import ConstraintError, UnboundedQueryError
from repro.experiments.acyclify_exp import query63_constraints, simple_fd_cycle_constraints


class TestBoundVariables:
    def test_cardinality_binds_its_variables(self):
        dc = DegreeConstraintSet(("A", "B"), [DegreeConstraint.cardinality(("A", "B"), 4)])
        assert bound_variables(dc) == frozenset({"A", "B"})
        assert all_variables_bound(dc)

    def test_chase_through_degree_constraints(self):
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A",), 4),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=2),
        ])
        assert all_variables_bound(dc)

    def test_unreachable_variable_unbound(self):
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A",), 4),
            # C is only bounded given B, but B is never bounded.
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=2),
        ])
        assert bound_variables(dc) == frozenset({"A"})
        assert not all_variables_bound(dc)
        with pytest.raises(UnboundedQueryError):
            require_bounded(dc)

    def test_query63_is_bounded_despite_cycle(self):
        dc = query63_constraints()
        assert all_variables_bound(dc)
        assert not dc.is_acyclic()

    def test_query63_naive_removal_breaks_boundedness(self):
        dc = query63_constraints()
        for constraint in dc:
            assert not all_variables_bound(dc.without(constraint))


class TestAcyclify:
    def test_acyclify_query63(self):
        dc = query63_constraints()
        weakened = acyclify(dc)
        assert weakened.is_acyclic()
        assert all_variables_bound(weakened)
        # Every weakened constraint is implied by some original constraint.
        for constraint in weakened:
            assert any(
                constraint.x == original.x and constraint.y <= original.y
                and constraint.bound == original.bound
                for original in dc
            )

    def test_acyclify_is_identity_on_acyclic(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A",), 4),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
        ])
        assert acyclify(dc).constraints == dc.constraints

    def test_acyclify_rejects_unbounded(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
            DegreeConstraint(x=frozenset("B"), y=frozenset("AB"), bound=2),
        ])
        with pytest.raises(UnboundedQueryError):
            acyclify(dc)

    def test_acyclified_bound_never_smaller(self):
        dc = query63_constraints()
        before = polymatroid_bound(dc).log2_bound
        after = polymatroid_bound(acyclify(dc)).log2_bound
        assert after >= before - 1e-9


class TestSimpleFdAcyclify:
    def test_preserves_bound_on_fd_cycle(self):
        dc = simple_fd_cycle_constraints(n=256)
        reduced = acyclify_simple_fds(dc)
        assert reduced.is_acyclic()
        before = polymatroid_bound(dc).log2_bound
        after = polymatroid_bound(reduced).log2_bound
        assert after == pytest.approx(before, abs=1e-6)

    def test_result_is_subset(self):
        dc = simple_fd_cycle_constraints()
        reduced = acyclify_simple_fds(dc)
        assert set(reduced.constraints) <= set(dc.constraints)

    def test_rejects_general_constraints(self):
        dc = query63_constraints()
        with pytest.raises(ConstraintError):
            acyclify_simple_fds(dc)

    def test_two_element_fd_cycle(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A", "B"), 64, guard="R"),
            DegreeConstraint.functional_dependency(("A",), ("B",), guard="R"),
            DegreeConstraint.functional_dependency(("B",), ("A",), guard="R"),
        ])
        reduced = acyclify_simple_fds(dc)
        assert reduced.is_acyclic()
        assert polymatroid_bound(reduced).log2_bound == pytest.approx(
            polymatroid_bound(dc).log2_bound, abs=1e-6)


class TestBestAcyclicWeakening:
    def test_finds_optimal_for_query63(self):
        dc = query63_constraints()
        best = best_acyclic_weakening(
            dc, objective=lambda d: polymatroid_bound(d).log2_bound)
        assert best.is_acyclic()
        # The brute-force optimum is at least as good as the greedy one.
        greedy = polymatroid_bound(acyclify(dc)).log2_bound
        assert polymatroid_bound(best).log2_bound <= greedy + 1e-9

    def test_rejects_unbounded_input(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
        ])
        with pytest.raises(UnboundedQueryError):
            best_acyclic_weakening(dc, objective=lambda d: 0.0)

    def test_respects_search_budget(self):
        dc = query63_constraints()
        with pytest.raises(ConstraintError):
            best_acyclic_weakening(dc, objective=lambda d: 0.0, max_options=2)
