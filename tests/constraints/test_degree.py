"""Tests for degree constraints and constraint sets."""

import math

import pytest

from repro.constraints.degree import (
    DegreeConstraint,
    DegreeConstraintSet,
    cardinality_constraints,
    constraints_from_database,
)
from repro.datagen.worstcase import triangle_agm_tight_instance
from repro.errors import ConstraintError
from repro.query.atoms import triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


class TestDegreeConstraint:
    def test_cardinality_constructor(self):
        c = DegreeConstraint.cardinality(("A", "B"), 100, guard="R")
        assert c.is_cardinality
        assert not c.x
        assert c.y == frozenset({"A", "B"})
        assert c.log_bound == pytest.approx(math.log2(100))

    def test_fd_constructor(self):
        c = DegreeConstraint.functional_dependency(("A",), ("B",), guard="R")
        assert c.is_fd
        assert c.is_simple_fd
        assert c.bound == 1
        assert c.log_bound == pytest.approx(0.0)

    def test_non_simple_fd(self):
        c = DegreeConstraint.functional_dependency(("A", "B"), ("C",))
        assert c.is_fd and not c.is_simple_fd

    def test_requires_x_proper_subset_of_y(self):
        with pytest.raises(ConstraintError):
            DegreeConstraint(x=frozenset("AB"), y=frozenset("AB"), bound=5)
        with pytest.raises(ConstraintError):
            DegreeConstraint(x=frozenset("AC"), y=frozenset("AB"), bound=5)

    def test_negative_bound_rejected(self):
        with pytest.raises(ConstraintError):
            DegreeConstraint.cardinality(("A",), -1)

    def test_zero_bound_log_is_minus_inf(self):
        c = DegreeConstraint.cardinality(("A",), 0)
        assert c.log_bound == float("-inf")

    def test_free_variables(self):
        c = DegreeConstraint(x=frozenset("A"), y=frozenset("ABC"), bound=3)
        assert c.free_variables == frozenset({"B", "C"})

    def test_weaken_to(self):
        c = DegreeConstraint(x=frozenset("A"), y=frozenset("ABC"), bound=3, guard="G")
        weaker = c.weaken_to(frozenset("AB"))
        assert weaker.y == frozenset({"A", "B"})
        assert weaker.bound == 3
        assert weaker.guard == "G"

    def test_weaken_to_rejects_bad_target(self):
        c = DegreeConstraint(x=frozenset("A"), y=frozenset("ABC"), bound=3)
        with pytest.raises(ConstraintError):
            c.weaken_to(frozenset("A"))  # equals X
        with pytest.raises(ConstraintError):
            c.weaken_to(frozenset("ABCD"))  # outside Y

    def test_str_mentions_guard(self):
        c = DegreeConstraint.cardinality(("A",), 4, guard="R")
        assert "R" in str(c)


class TestSatisfaction:
    def test_cardinality_satisfied(self):
        db = Database([Relation("R", ("A", "B"), [(1, 2), (3, 4)])])
        good = DegreeConstraint.cardinality(("A", "B"), 2, guard="R")
        bad = DegreeConstraint.cardinality(("A", "B"), 1, guard="R")
        assert good.is_satisfied_by(db)
        assert not bad.is_satisfied_by(db)

    def test_degree_satisfied(self):
        db = Database([Relation("S", ("B", "C"), [(1, 1), (1, 2), (2, 1)])])
        good = DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=2, guard="S")
        bad = DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=1, guard="S")
        assert good.is_satisfied_by(db)
        assert not bad.is_satisfied_by(db)

    def test_empty_relation_satisfies_everything(self):
        db = Database([Relation("R", ("A", "B"), [])])
        c = DegreeConstraint.cardinality(("A", "B"), 0, guard="R")
        assert c.is_satisfied_by(db)

    def test_missing_guard_rejected(self):
        c = DegreeConstraint.cardinality(("A",), 4)
        with pytest.raises(ConstraintError):
            c.is_satisfied_by(Database())

    def test_guard_missing_variable_rejected(self):
        db = Database([Relation("R", ("A",), [(1,)])])
        c = DegreeConstraint.cardinality(("A", "B"), 4, guard="R")
        with pytest.raises(ConstraintError):
            c.is_satisfied_by(db)

    def test_column_renaming(self):
        db = Database([Relation("R", ("X", "Y"), [(1, 2)])])
        c = DegreeConstraint.cardinality(("A", "B"), 4, guard="R")
        assert c.is_satisfied_by(db, variable_of_column={"R": {"X": "A", "Y": "B"}})


class TestDegreeConstraintSet:
    def test_construction_and_iteration(self):
        dc = DegreeConstraintSet(("A", "B"), [DegreeConstraint.cardinality(("A", "B"), 4)])
        assert len(dc) == 1
        assert list(dc)[0].is_cardinality

    def test_rejects_foreign_variables(self):
        with pytest.raises(ConstraintError):
            DegreeConstraintSet(("A",), [DegreeConstraint.cardinality(("A", "B"), 4)])

    def test_add_replace_without(self):
        c1 = DegreeConstraint.cardinality(("A",), 4)
        c2 = DegreeConstraint.cardinality(("B",), 8)
        dc = DegreeConstraintSet(("A", "B"), [c1])
        dc.add(c2)
        assert len(dc) == 2
        c3 = DegreeConstraint.cardinality(("A",), 16)
        replaced = dc.replace(c1, c3)
        assert c3 in replaced.constraints and c1 not in replaced.constraints
        removed = dc.without(c2)
        assert len(removed) == 1

    def test_classification_helpers(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A", "B"), 4, guard="R"),
            DegreeConstraint.functional_dependency(("A",), ("B",), guard="R"),
        ])
        assert not dc.only_cardinalities()
        assert dc.only_cardinalities_and_simple_fds()
        assert len(dc.cardinality_constraints()) == 1
        assert len(dc.proper_degree_constraints()) == 1

    def test_guards_grouping(self):
        dc = DegreeConstraintSet(("A", "B"), [
            DegreeConstraint.cardinality(("A", "B"), 4, guard="R"),
            DegreeConstraint.functional_dependency(("A",), ("B",), guard="R"),
        ])
        assert set(dc.guards().keys()) == {"R"}
        assert len(dc.guards()["R"]) == 2

    def test_constraints_bounding(self):
        dc = DegreeConstraintSet(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A", "B"), 4),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=2),
        ])
        assert len(dc.constraints_bounding("B")) == 1
        assert len(dc.constraints_bounding("C")) == 1
        assert len(dc.constraints_bounding("A")) == 1

    def test_validate_against_database(self, tight_triangle_100):
        query, database = tight_triangle_100
        dc = cardinality_constraints(query, database)
        assert dc.validate(database)
        assert dc.violated_constraints(database) == []

    def test_violations_reported(self):
        query, database = triangle_agm_tight_instance(100)
        dc = DegreeConstraintSet(query.variables, [
            DegreeConstraint.cardinality(("A", "B"), 1, guard="R"),
        ])
        assert not dc.validate(database)
        assert len(dc.violated_constraints(database)) == 1


class TestDerivedConstraints:
    def test_cardinality_constraints_from_query(self, tight_triangle_100):
        query, database = tight_triangle_100
        dc = cardinality_constraints(query, database)
        assert len(dc) == 3
        assert dc.only_cardinalities()
        assert all(c.bound == len(database[c.guard]) for c in dc)

    def test_constraints_from_database_include_degrees(self, tight_triangle_100):
        query, database = tight_triangle_100
        dc = constraints_from_database(query, database, max_key_size=1)
        # 3 cardinalities + 2 single-key degrees per binary atom = 9.
        assert len(dc) == 9
        assert dc.validate(database)

    def test_constraints_from_database_are_satisfied(self):
        query = triangle_query()
        database = Database([
            Relation("R", ("A", "B"), [(1, 1), (1, 2), (2, 1)]),
            Relation("S", ("B", "C"), [(1, 1), (2, 1)]),
            Relation("T", ("A", "C"), [(1, 1), (2, 1)]),
        ])
        dc = constraints_from_database(query, database)
        assert dc.validate(database)
