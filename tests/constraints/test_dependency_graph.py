"""Tests for the constraint dependency graph G_DC."""

import pytest

from repro.constraints.degree import DegreeConstraint, DegreeConstraintSet
from repro.constraints.dependency_graph import (
    compatible_variable_order,
    constraint_dependency_graph,
    find_cycle,
    is_acyclic,
    order_is_compatible,
)
from repro.errors import ConstraintError


def make_dc(variables, constraints):
    return DegreeConstraintSet(variables, constraints)


class TestGraphConstruction:
    def test_cardinality_constraints_add_no_edges(self):
        dc = make_dc(("A", "B"), [DegreeConstraint.cardinality(("A", "B"), 4)])
        graph = constraint_dependency_graph(dc)
        assert graph.number_of_edges() == 0
        assert set(graph.nodes) == {"A", "B"}

    def test_degree_constraint_edges(self):
        dc = make_dc(("A", "B", "C"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("ABC"), bound=4),
        ])
        graph = constraint_dependency_graph(dc)
        assert set(graph.edges) == {("A", "B"), ("A", "C")}


class TestAcyclicity:
    def test_cardinalities_only_acyclic(self):
        dc = make_dc(("A", "B"), [DegreeConstraint.cardinality(("A", "B"), 4)])
        assert is_acyclic(dc)
        assert find_cycle(dc) is None

    def test_chain_is_acyclic(self):
        dc = make_dc(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A",), 4),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=2),
        ])
        assert is_acyclic(dc)

    def test_two_cycle_detected(self):
        dc = make_dc(("A", "B"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
            DegreeConstraint(x=frozenset("B"), y=frozenset("AB"), bound=2),
        ])
        assert not is_acyclic(dc)
        assert find_cycle(dc) is not None

    def test_query63_cycle_detected(self):
        dc = make_dc(("A", "B", "C", "D"), [
            DegreeConstraint.cardinality(("A",), 10),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=2),
            DegreeConstraint(x=frozenset("C"), y=frozenset({"A", "C", "D"}), bound=2),
        ])
        assert not is_acyclic(dc)


class TestCompatibleOrder:
    def test_order_respects_constraints(self):
        dc = make_dc(("A", "B", "C"), [
            DegreeConstraint.cardinality(("A",), 4),
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
            DegreeConstraint(x=frozenset("B"), y=frozenset("BC"), bound=2),
        ])
        order = compatible_variable_order(dc)
        assert order.index("A") < order.index("B") < order.index("C")
        assert order_is_compatible(dc, order)

    def test_cyclic_dc_has_no_order(self):
        dc = make_dc(("A", "B"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
            DegreeConstraint(x=frozenset("B"), y=frozenset("AB"), bound=2),
        ])
        with pytest.raises(ConstraintError):
            compatible_variable_order(dc)

    def test_preference_breaks_ties(self):
        dc = make_dc(("A", "B", "C"), [DegreeConstraint.cardinality(("A", "B", "C"), 4)])
        assert compatible_variable_order(dc, prefer=("C", "B", "A")) == ("C", "B", "A")

    def test_order_is_compatible_rejects_violations(self):
        dc = make_dc(("A", "B"), [
            DegreeConstraint(x=frozenset("A"), y=frozenset("AB"), bound=2),
        ])
        assert order_is_compatible(dc, ("A", "B"))
        assert not order_is_compatible(dc, ("B", "A"))

    def test_order_is_compatible_requires_all_variables(self):
        dc = make_dc(("A", "B"), [DegreeConstraint.cardinality(("A", "B"), 4)])
        assert not order_is_compatible(dc, ("A",))
