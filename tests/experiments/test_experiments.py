"""Integration tests: every experiment module runs and reproduces the paper's
qualitative claims at small scale."""


import pytest

from repro.experiments import (
    run_acyclic_dc,
    run_acyclify,
    run_bound_lps,
    run_example1_experiment,
    run_inequalities,
    run_loomis_whitney,
    run_table1,
    run_table2,
    run_tightness,
    run_triangle_bounds,
    run_triangle_scaling,
)
from repro.experiments.runner import ExperimentTable, fit_exponent, format_table, geometric_mean


class TestRunnerHelpers:
    def test_format_table_contains_columns_and_rows(self):
        table = ExperimentTable("EX", "demo", ("a", "b"))
        table.add_row(a=1, b=2.5)
        table.add_note("a note")
        text = format_table(table)
        assert "EX" in text and "demo" in text
        assert "a note" in text
        assert "2.5" in text

    def test_column_accessor(self):
        table = ExperimentTable("EX", "demo", ("a",))
        table.add_row(a=1)
        table.add_row(a=3)
        assert table.column("a") == [1, 3]

    def test_geometric_mean(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_fit_exponent_recovers_power_law(self):
        xs = [10, 20, 40, 80]
        ys = [x ** 1.5 for x in xs]
        assert fit_exponent(xs, ys) == pytest.approx(1.5, abs=0.01)


class TestTable1:
    def test_rows_and_tightness_flags(self):
        table = run_table1(triangle_n=100, fd_m=8, example1_scale=80)
        assert len(table.rows) == 3
        # Cardinality-only row: observed tight.
        assert table.rows[0]["polymatroid tight (observed)"] is True
        # The bound columns are consistent: entropic estimate <= polymatroid.
        for row in table.rows:
            assert row["entropic estimate"] <= row["polymatroid bound"] + 1e-6
            assert row["achieved output"] <= row["polymatroid bound"] + 1e-6


class TestTable2:
    def test_structure_and_verification(self):
        table = run_table2(scale=80, seed=1)
        assert len(table.rows) == 9
        assert table.rows[0]["operation"] == "partition"
        assert any("matches Generic-Join = True" in note for note in table.notes)


class TestTriangleExperiments:
    def test_bounds_regimes(self):
        table = run_triangle_bounds(base=1000)
        balanced = table.rows[0]
        assert balanced["LP vertex"] == "(1/2,1/2,1/2)"
        skew = [r for r in table.rows if r["regime"] == "two tiny relations"][0]
        assert skew["LP vertex"] == "(1,1,0)"

    def test_skew_scaling_shows_separation(self):
        table = run_triangle_scaling(sizes=(50, 100, 200), family="skew")
        ns = [float(v) for v in table.column("N")]
        pairwise_exp = fit_exponent(
            ns, [float(v) for v in table.column("best pairwise max intermediate")])
        wcoj_exp = fit_exponent(ns, [float(v) for v in table.column("generic join ops")])
        assert pairwise_exp > 1.7
        assert wcoj_exp < 1.3

    def test_tight_scaling_tracks_output(self):
        table = run_triangle_scaling(sizes=(64, 144, 256), family="agm_tight")
        for row in table.rows:
            assert row["output"] == pytest.approx(row["agm bound"], rel=1e-6)
            # WCOJ work is within a small factor of the output size.
            assert row["generic join ops"] <= 10 * row["output"] + 10 * row["N"]


class TestLoomisWhitneyExperiment:
    def test_ratio_grows_with_n(self):
        table = run_loomis_whitney(ks=(3,), sizes=(50, 100, 200), family="skew")
        ratios = [float(r["pairwise/wcoj ratio"]) for r in table.rows]
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0] * 1.5


class TestDegreeConstraintExperiments:
    def test_acyclic_dc_within_bound(self):
        table = run_acyclic_dc(sizes=(30, 60), fanout=3, seed=1)
        assert all(row["within bound"] for row in table.rows)
        assert all(row["worst-case bound"] == pytest.approx(row["dual bound"], rel=1e-6)
                   for row in table.rows)

    def test_example1_within_bound(self):
        table = run_example1_experiment(scales=(80, 120), seed=1)
        for row in table.rows:
            assert row["within bound"]
            assert row["matches generic join"]

    def test_bound_lps_agree_on_acyclic(self):
        table = run_bound_lps(ns=(3, 4), constraints_per_n=3, seed=2)
        acyclic_rows = [r for r in table.rows if r["acyclic"]]
        assert acyclic_rows
        assert all(r["equal"] for r in acyclic_rows)
        cyclic_rows = [r for r in table.rows if not r["acyclic"]]
        assert cyclic_rows and not cyclic_rows[0]["equal"]

    def test_acyclify_experiment(self):
        table = run_acyclify()
        q63 = table.rows[0]
        assert q63["cyclic before"] and q63["acyclic after"]
        assert not q63["naive removal stays bounded"]
        fd = table.rows[1]
        assert fd["bound preserved"]


class TestInequalityAndTightnessExperiments:
    def test_inequalities_all_hold(self):
        table = run_inequalities(num_random_distributions=3, seed=1)
        assert all(row["holds"] for row in table.rows)

    def test_tightness_ratios_near_one(self):
        table = run_tightness(n=100)
        for row in table.rows:
            assert row["actual / bound"] == pytest.approx(1.0, abs=0.05)
