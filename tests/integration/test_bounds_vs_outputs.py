"""Integration / property tests: bounds always dominate actual outputs, and
the entropy argument's steps hold on real data.

These tests tie together the information-theory substrate, the bound LPs and
the join engines: for arbitrary instances, the AGM / polymatroid / modular
bounds must upper-bound the measured output, the output's entropy function
must lie in H_DC, and Shearer/Shannon-flow inequalities must hold on it.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.agm import agm_bound
from repro.bounds.modular import modular_bound
from repro.bounds.polymatroid import polymatroid_bound
from repro.constraints.degree import cardinality_constraints, constraints_from_database
from repro.datagen.loomis_whitney import loomis_whitney_random_instance
from repro.infotheory.entropy import entropy_function_of_relation
from repro.joins.generic_join import generic_join
from repro.panda.example1 import example1_inequality, example1_database, example1_query
from repro.query.atoms import triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation

pairs = st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25)


def triangle_db(r, s, t):
    return Database([
        Relation("R", ("A", "B"), r),
        Relation("S", ("B", "C"), s),
        Relation("T", ("A", "C"), t),
    ])


class TestBoundsDominateOutputs:
    @given(pairs, pairs, pairs)
    @settings(max_examples=50, deadline=None)
    def test_agm_and_polymatroid_dominate_triangle_output(self, r, s, t):
        query = triangle_query()
        database = triangle_db(r, s, t)
        output = len(generic_join(query, database))
        agm = agm_bound(query, database)
        assert agm.permits(output)
        if output and all(len(database[n]) for n in ("R", "S", "T")):
            dc = cardinality_constraints(query, database)
            poly = polymatroid_bound(dc)
            assert math.log2(output) <= poly.log2_bound + 1e-6

    @given(pairs, pairs, pairs)
    @settings(max_examples=25, deadline=None)
    def test_degree_constraints_tighten_but_still_dominate(self, r, s, t):
        query = triangle_query()
        database = triangle_db(r, s, t)
        if any(len(database[n]) == 0 for n in ("R", "S", "T")):
            return
        output = len(generic_join(query, database))
        dc = constraints_from_database(query, database, max_key_size=1)
        cardinalities_only = cardinality_constraints(query, database)
        rich = polymatroid_bound(dc)
        plain = polymatroid_bound(cardinalities_only)
        # More constraints can only tighten the bound...
        assert rich.log2_bound <= plain.log2_bound + 1e-6
        # ...but it must still dominate the actual output.
        if output:
            assert math.log2(output) <= rich.log2_bound + 1e-6

    def test_lw_bound_dominates_output(self):
        query, database = loomis_whitney_random_instance(4, 40, seed=13)
        output = len(generic_join(query, database))
        assert agm_bound(query, database).permits(output)


class TestEntropyArgumentOnRealData:
    @given(pairs, pairs, pairs)
    @settings(max_examples=25, deadline=None)
    def test_output_entropy_function_lies_in_hdc(self, r, s, t):
        """The core step of the entropy argument: the uniform-output
        distribution satisfies h(Y|X) <= log2 N_{Y|X} for every constraint
        derived from the data."""
        query = triangle_query()
        database = triangle_db(r, s, t)
        output = generic_join(query, database)
        if len(output) == 0:
            return
        h = entropy_function_of_relation(output)
        dc = constraints_from_database(query, database, max_key_size=1)
        for constraint in dc:
            observed = h(constraint.y) - h(constraint.x)
            assert observed <= constraint.log_bound + 1e-9

    @given(pairs, pairs, pairs)
    @settings(max_examples=25, deadline=None)
    def test_full_entropy_equals_log_output(self, r, s, t):
        query = triangle_query()
        database = triangle_db(r, s, t)
        output = generic_join(query, database)
        if len(output) == 0:
            return
        h = entropy_function_of_relation(output)
        assert h(query.variables) == pytest.approx(math.log2(len(output)))

    def test_example1_flow_holds_on_output_entropy(self):
        database = example1_database(scale=100, seed=4)
        query = example1_query()
        output = generic_join(query, database)
        if len(output) == 0:
            return
        h = entropy_function_of_relation(output)
        assert example1_inequality().holds_for(h)


class TestModularBoundOnAcyclicData:
    def test_modular_bound_dominates_chain_output(self):
        from repro.experiments.acyclic_dc import chain_instance

        query, database, dc = chain_instance(num_r=50, fanout=3, seed=9)
        output = len(generic_join(query, database))
        bound = modular_bound(dc)
        assert output <= bound.bound + 1e-9
