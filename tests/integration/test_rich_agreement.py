"""Cross-engine agreement on the rich query surface.

Every ``Engine`` mode must agree with a brute-force reference (naive
nested-loop join + Python-side filtering / projection / aggregation) on
projected, selected, constant-pinned, aggregated, and LIMIT'd queries over
the datagen instances — extending ``test_engine_agreement.py`` beyond full
variable-only conjunctive queries.
"""

import pytest

from repro.datagen.graphs import erdos_renyi_graph, zipf_graph
from repro.datagen.worstcase import triangle_from_graph, triangle_skew_instance
from repro.engine import Engine
from repro.joins.naive import nested_loop_join
from repro.query.builder import Query
from repro.query.semiring import fold_aggregates

MODES = ("naive", "binary", "generic", "leapfrog", "auto")


def reference(query, database):
    """Sorted brute-force rows for a rich query (ignoring order/limit)."""
    spec = Query.coerce(query)
    core = spec.core
    variables = core.variables
    rows = [
        t for t in nested_loop_join(core, database).tuples
        if all(sel.evaluate(dict(zip(variables, t)))
               for sel in spec.all_selections)
    ]
    if spec.aggregates:
        return sorted(fold_aggregates(rows, variables, spec.head_vars,
                                      spec.aggregates))
    positions = [variables.index(h) for h in spec.head_vars]
    return sorted({tuple(t[p] for p in positions) for t in rows})


def instances():
    triples = []
    for seed in (3, 17):
        _, database = triangle_from_graph(erdos_renyi_graph(22, 80, seed=seed))
        triples.append((f"er-{seed}", database))
    _, skewed = triangle_from_graph(zipf_graph(28, 110, skew=1.3, seed=23))
    triples.append(("zipf", skewed))
    _, heavy = triangle_skew_instance(60)
    triples.append(("skew", heavy))
    return triples


_INSTANCES = instances()

#: Rich triangle-shaped workloads: projection, selection, constants,
#: aggregation — all over the three binary relations R, S, T.
RICH_QUERIES = (
    "Q(A) :- R(A,B), S(B,C), T(A,C)",
    "Q(A,B) :- R(A,B), S(B,C), T(A,C), A < B",
    "Q(A,B,C) :- R(A,B), S(B,C), T(A,C), A != 0, B >= 1",
    "Q(A) :- R(A,B), S(B,1), A < B",
    "Q(C) :- R(0,B), S(B,C), T(0,C)",
    "Q(A, COUNT(*)) :- R(A,B), S(B,C), T(A,C)",
    "Q(A, SUM(C) AS total, MIN(B), MAX(C)) :- R(A,B), S(B,C), T(A,C)",
    "Q(COUNT(*)) :- R(A,B), S(B,C), T(A,C), A < C",
)


@pytest.mark.parametrize("name,database", _INSTANCES,
                         ids=[name for name, _ in _INSTANCES])
@pytest.mark.parametrize("text", RICH_QUERIES)
def test_every_mode_agrees_with_brute_force(name, database, text):
    expected = reference(text, database)
    engine = Engine(database=database, cache_results=False)
    for mode in MODES:
        result = engine.execute(text, mode=mode)
        assert sorted(result.tuples) == expected, (mode, text)


@pytest.mark.parametrize("name,database", _INSTANCES,
                         ids=[name for name, _ in _INSTANCES])
def test_limited_queries_return_consistent_prefixes(name, database):
    text = "Q(A,B) :- R(A,B), S(B,C), T(A,C), A != 1"
    expected = set(reference(text, database))
    engine = Engine(database=database, cache_results=False)
    k = max(1, len(expected) // 2)
    for mode in MODES:
        limited = engine.execute(text, mode=mode, limit=k)
        assert len(limited) == min(k, len(expected)), mode
        assert set(limited.tuples) <= expected, mode


@pytest.mark.parametrize("name,database", _INSTANCES,
                         ids=[name for name, _ in _INSTANCES])
def test_ordered_top_k_agrees_across_modes(name, database):
    text = "Q(A,B) :- R(A,B), S(B,C), T(A,C)"
    full = reference(text, database)
    expected = sorted(full, key=lambda r: (-r[1], r))[:5]
    engine = Engine(database=database, cache_results=False)
    for mode in MODES:
        spec = Query(
            Query.coerce(text).atoms, head=("A", "B"),
            order_by=["-B"], limit=5,
        )
        rows = list(engine.stream(spec, mode=mode))
        assert rows == expected, mode


@pytest.mark.parametrize("name,database", _INSTANCES,
                         ids=[name for name, _ in _INSTANCES])
def test_warm_cache_serves_the_same_rich_answers(name, database):
    engine = Engine(database=database)
    for text in RICH_QUERIES[:4]:
        first = engine.execute(text)
        second = engine.execute(text)
        assert second == first
    assert engine.stats.result_hits == 4
