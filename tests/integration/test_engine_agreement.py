"""Cross-engine agreement for the persistent engine.

Randomized queries from :mod:`repro.datagen` run through the naive oracle,
Generic-Join, Leapfrog Triejoin *and* every ``Engine.execute`` mode; all
must produce identical sorted outputs, and repeated execution must be
served from the caches without changing the answer.  This extends
``test_engines_agree.py`` (the one-shot functions) to the stateful engine,
where a bug in invalidation or plan translation would silently corrupt
results rather than crash.
"""

import pytest

from repro.datagen.graphs import erdos_renyi_graph, zipf_graph
from repro.datagen.loomis_whitney import loomis_whitney_random_instance
from repro.datagen.worstcase import (
    cycle_agm_tight_instance,
    triangle_agm_tight_instance,
    triangle_from_graph,
    triangle_skew_instance,
)
from repro.engine import Engine
from repro.joins.generic_join import generic_join
from repro.joins.leapfrog import leapfrog_triejoin
from repro.joins.naive import nested_loop_join
from repro.query.atoms import cycle_query, triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


def random_instances():
    """(name, query, database) triples spanning the datagen families."""
    instances = []
    for seed in (3, 17):
        _, database = triangle_from_graph(erdos_renyi_graph(24, 90, seed=seed))
        instances.append((f"er-triangle-{seed}", triangle_query(), database))
    _, skewed = triangle_from_graph(zipf_graph(30, 120, skew=1.3, seed=23))
    instances.append(("zipf-triangle", triangle_query(), skewed))
    instances.append(("skew-triangle", *triangle_skew_instance(60)))
    instances.append(("tight-triangle", *triangle_agm_tight_instance(50)))
    instances.append(("lw4", *loomis_whitney_random_instance(4, 40, seed=29)))
    instances.append(("cycle4", *cycle_agm_tight_instance(4, 30)))
    query = cycle_query(4)
    database = Database([
        Relation(atom.relation, ("A", "B"),
                 erdos_renyi_graph(14, 50, seed=31 + i).tuples)
        for i, atom in enumerate(query.atoms)
    ])
    instances.append(("er-cycle4", query, database))
    return instances


_INSTANCES = random_instances()


@pytest.mark.parametrize(
    "name,query,database", _INSTANCES,
    ids=[name for name, _, _ in _INSTANCES],
)
class TestEngineAgreesWithDirectCalls:
    def test_all_engines_and_modes_agree(self, name, query, database):
        expected = sorted(nested_loop_join(query, database).tuples)
        assert sorted(generic_join(query, database).tuples) == expected
        assert sorted(leapfrog_triejoin(query, database).tuples) == expected
        engine = Engine(database=database)
        for mode in ("auto", "naive", "binary", "generic", "leapfrog"):
            result = engine.execute(query, mode=mode)
            assert sorted(result.tuples) == expected, mode

    def test_repeated_execution_hits_caches_and_agrees(self, name, query,
                                                       database):
        engine = Engine(database=database)
        first = engine.execute(query)
        assert engine.stats.plan_misses == 1
        assert engine.stats.result_misses == 1
        second = engine.execute(query)
        assert engine.stats.plan_hits == 1
        assert engine.stats.result_hits == 1
        assert second == first
        assert sorted(second.tuples) == \
            sorted(generic_join(query, database).tuples)

    def test_mutation_then_requery_agrees(self, name, query, database):
        engine = Engine(database=database)
        engine.execute(query)
        victim = query.atoms[0].relation
        domain = 10 ** 6  # values far outside every generator's range
        arity = database.get(victim).arity
        engine.insert(victim, [tuple(domain + i for _ in range(arity))
                               for i in range(3)])
        requeried = engine.execute(query)
        assert engine.stats.result_hits == 0  # version change: no stale serve
        assert sorted(requeried.tuples) == \
            sorted(nested_loop_join(query, engine.database).tuples)
