"""Cross-module property tests over randomly shaped queries and data.

Hypothesis generates whole (query, database) pairs across several query
shapes (chain, star, cycle, triangle-with-apex) and checks the invariants
that tie the library together:

* every engine that applies computes the same output;
* the AGM bound dominates the output size;
* the fractional hypertree width never exceeds rho*;
* counting equals materialized size;
* the entropy function of the output satisfies every derived constraint.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds.agm import agm_bound, rho_star
from repro.constraints.degree import constraints_from_database
from repro.infotheory.entropy import entropy_function_of_relation
from repro.joins.counting import count_join
from repro.joins.generic_join import generic_join
from repro.joins.leapfrog import leapfrog_triejoin
from repro.joins.naive import nested_loop_join
from repro.joins.yannakakis import yannakakis
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.decomposition import is_alpha_acyclic
from repro.query.widths import fractional_hypertree_width
from repro.relational.database import Database
from repro.relational.relation import Relation

# ----------------------------------------------------------------------
# Query/database generation
# ----------------------------------------------------------------------
_SHAPES = {
    "chain": [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "D"))],
    "star": [("R", ("A", "B")), ("S", ("A", "C")), ("T", ("A", "D"))],
    "cycle": [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "D")), ("U", ("D", "A"))],
    "apex-triangle": [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("A", "C")),
                      ("U", ("C", "D"))],
}

_relation_tuples = st.sets(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=0, max_size=10
)


@st.composite
def query_and_database(draw):
    shape_name = draw(st.sampled_from(sorted(_SHAPES)))
    shape = _SHAPES[shape_name]
    atoms = [Atom(name, variables) for name, variables in shape]
    query = ConjunctiveQuery(atoms, name=f"Q_{shape_name}")
    relations = []
    for name, variables in shape:
        tuples = draw(_relation_tuples)
        relations.append(Relation(name, variables, tuples))
    return query, Database(relations)


class TestCrossInvariants:
    @given(query_and_database())
    @settings(max_examples=60, deadline=None)
    def test_engines_agree(self, qd):
        query, database = qd
        expected = nested_loop_join(query, database)
        assert generic_join(query, database) == expected
        assert leapfrog_triejoin(query, database) == expected
        if is_alpha_acyclic(query.hypergraph()):
            assert yannakakis(query, database) == expected

    @given(query_and_database())
    @settings(max_examples=60, deadline=None)
    def test_agm_dominates_and_count_matches(self, qd):
        query, database = qd
        output = generic_join(query, database)
        assert agm_bound(query, database).permits(len(output))
        assert count_join(query, database) == len(output)

    @given(query_and_database())
    @settings(max_examples=20, deadline=None)
    def test_width_below_rho_star(self, qd):
        query, _database = qd
        h = query.hypergraph()
        assert fractional_hypertree_width(h) <= rho_star(query) + 1e-9
        if is_alpha_acyclic(h):
            assert fractional_hypertree_width(h) == pytest.approx(1.0)

    @given(query_and_database())
    @settings(max_examples=30, deadline=None)
    def test_output_entropy_in_hdc(self, qd):
        query, database = qd
        output = generic_join(query, database)
        if len(output) == 0:
            return
        h = entropy_function_of_relation(output)
        assert h(query.variables) == pytest.approx(math.log2(len(output)))
        dc = constraints_from_database(query, database, max_key_size=1)
        for constraint in dc:
            assert h(constraint.y) - h(constraint.x) <= constraint.log_bound + 1e-9
