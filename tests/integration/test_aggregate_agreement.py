"""Cross-engine, cross-mode agreement for in-recursion aggregation.

The two aggregate execution modes — in-recursion semiring elimination
(WCOJ recursion / Yannakakis in-pass) and stream-fold over the join — must
produce identical grouped results on every executor, for acyclic and
cyclic queries, with and without selections, for every registered
aggregate.  Ground truth is the naive nested-loop join folded in Python.
"""

import random

import pytest

from repro.engine import Engine
from repro.joins.naive import nested_loop_stream
from repro.query.builder import Query
from repro.query.semiring import fold_aggregates
from repro.relational.database import Database
from repro.relational.relation import Relation

MODES = ("naive", "binary", "generic", "leapfrog", "auto")


def reference(query, database):
    """Sorted brute-force aggregate rows (join in full, fold in Python)."""
    spec = Query.coerce(query)
    core = spec.core
    rows = list(nested_loop_stream(core, database,
                                   selections=spec.all_selections))
    return sorted(fold_aggregates(rows, core.variables, spec.head_vars,
                                  spec.aggregates))


def random_database(seed: int) -> Database:
    rng = random.Random(seed)
    def rel(name, attrs, n, dom):
        return Relation(name, attrs,
                        {tuple(rng.randrange(dom) for _ in attrs)
                         for _ in range(n)})
    return Database([
        rel("R", ("x", "y"), 40, 8),
        rel("S", ("y", "z"), 45, 8),
        rel("T", ("x", "z"), 40, 8),
        rel("U", ("z", "w"), 30, 8),
    ])


ACYCLIC_QUERIES = (
    "Q(A, COUNT(*)) :- R(A,B), S(B,C)",
    "Q(A, SUM(C) AS s, MIN(B) AS m) :- R(A,B), S(B,C), U(C,D)",
    "Q(AVG(D) AS a) :- S(B,C), U(C,D)",
    "Q(B, MAX(D) AS mx, COUNT(*)) :- R(A,B), S(B,C), U(C,D), A < D",
    "Q(A, AVG(C) AS ac) :- R(A,B), S(B,C), B != 3",
    # MIN/MAX whose variable sits at the far end of a path: the atoms
    # without the designated variable send value-free (tropical ONE)
    # annotations up the join tree, exercising ONE ⊕ ONE in projections.
    "Q(MAX(D) AS mx) :- R(A,B), S(B,C), U(C,D)",
    "Q(D, MIN(A) AS mn) :- R(A,B), S(B,C), U(C,D)",
)

CYCLIC_QUERIES = (
    "Q(A, COUNT(*)) :- R(A,B), S(B,C), T(A,C)",
    "Q(COUNT(*), SUM(A) AS s) :- R(A,B), S(B,C), T(A,C)",
    "Q(A, B, MIN(C) AS m, AVG(C) AS a) :- R(A,B), S(B,C), T(A,C), A != 2",
)


@pytest.mark.parametrize("seed", [0, 7])
@pytest.mark.parametrize("query", ACYCLIC_QUERIES + CYCLIC_QUERIES)
class TestModesAgree:
    def test_every_executor_and_mode_matches_brute_force(self, query, seed):
        database = random_database(seed)
        expected = reference(query, database)
        for mode in MODES:
            for aggregate_mode in ("auto", "recursion", "fold"):
                if mode in ("naive", "binary") and aggregate_mode == "recursion":
                    continue  # materializing strategies cannot recurse
                engine = Engine(database=database, cache_results=False)
                result = engine.execute(query, mode=mode,
                                        aggregate_mode=aggregate_mode)
                assert sorted(result.tuples) == expected, (
                    f"{mode}/{aggregate_mode} disagrees on {query}"
                )


@pytest.mark.parametrize("query", ACYCLIC_QUERIES)
@pytest.mark.parametrize("aggregate_mode", ["recursion", "fold"])
def test_yannakakis_modes_agree_on_acyclic(query, aggregate_mode):
    database = random_database(3)
    engine = Engine(database=database, cache_results=False)
    result = engine.execute(query, mode="yannakakis",
                            aggregate_mode=aggregate_mode)
    assert sorted(result.tuples) == reference(query, database)


def test_streamed_aggregate_rows_match_execute():
    database = random_database(11)
    engine = Engine(database=database)
    query = "Q(A, COUNT(*), AVG(C) AS ac) :- R(A,B), S(B,C)"
    streamed = sorted(engine.stream(query, mode="generic",
                                    aggregate_mode="recursion"))
    executed = sorted(engine.execute(query).tuples)
    assert streamed == executed


def test_min_max_over_string_columns_in_every_mode():
    # The tropical product's identity must pass non-numeric values through
    # (Yannakakis in-pass annotations), not do arithmetic with them.
    database = Database([
        Relation("R", ("a", "b"), [(1, 2), (2, 3)]),
        Relation("S", ("b", "c"), [(2, "apple"), (3, "pear"), (3, "fig")]),
    ])
    query = "Q(A, MIN(C) AS mn, MAX(C) AS mx) :- R(A,B), S(B,C)"
    expected = [(1, "apple", "apple"), (2, "fig", "pear")]
    for mode, kwargs in (("naive", {}), ("generic", {}), ("leapfrog", {}),
                         ("yannakakis", {"aggregate_mode": "recursion"}),
                         ("yannakakis", {"aggregate_mode": "fold"})):
        engine = Engine(database=database, cache_results=False)
        result = engine.execute(query, mode=mode, **kwargs)
        assert sorted(result.tuples) == expected, mode


def test_group_free_empty_join_yields_identity_row_everywhere():
    database = Database([
        Relation("R", ("x", "y"), []),
        Relation("S", ("y", "z"), [(1, 2)]),
    ])
    query = "Q(COUNT(*), SUM(A) AS s, MIN(C) AS m, AVG(C) AS a) :- R(A,B), S(B,C)"
    expected = [(0, 0, None, None)]
    for mode in MODES:
        engine = Engine(database=database, cache_results=False)
        assert sorted(engine.execute(query, mode=mode).tuples) == expected
    engine = Engine(database=database, cache_results=False)
    assert sorted(engine.execute(query, mode="yannakakis",
                                 aggregate_mode="recursion").tuples) == expected
