"""Cross-engine integration tests: every join engine computes the same result.

These are the highest-value tests in the suite: Generic-Join, Leapfrog
Triejoin, Algorithm 1, Algorithm 2, Algorithm 3, every pairwise plan, the
PANDA interpreter and the naive nested-loop oracle must agree on every
instance, random or adversarial.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.degree import cardinality_constraints, constraints_from_database
from repro.datagen.graphs import erdos_renyi_graph, zipf_graph
from repro.datagen.loomis_whitney import loomis_whitney_random_instance
from repro.datagen.worstcase import triangle_from_graph
from repro.joins.backtracking import backtracking_join
from repro.joins.binary_plans import all_left_deep_plans, best_left_deep_execution
from repro.joins.generic_join import generic_join
from repro.joins.leapfrog import leapfrog_triejoin
from repro.joins.naive import nested_loop_join
from repro.joins.plan import execute_plan
from repro.joins.triangle import triangle_algorithm1, triangle_algorithm2
from repro.query.atoms import cycle_query, triangle_query
from repro.relational.database import Database
from repro.relational.relation import Relation


def all_engines_triangle(database):
    """Run every triangle-capable engine and return the set of result tuple-sets."""
    query = triangle_query()
    results = []
    results.append(generic_join(query, database).tuples)
    results.append(leapfrog_triejoin(query, database).tuples)
    results.append(nested_loop_join(query, database).tuples)
    results.append(triangle_algorithm1(database["R"], database["S"], database["T"]).tuples)
    results.append(triangle_algorithm2(database["R"], database["S"], database["T"]).tuples)
    results.append(best_left_deep_execution(query, database).result.tuples)
    dc = cardinality_constraints(query, database)
    results.append(backtracking_join(query, database, dc).tuples)
    return results


class TestTriangleEnginesAgree:
    def test_on_random_graph(self):
        edges = erdos_renyi_graph(30, 120, seed=11)
        _, database = triangle_from_graph(edges)
        results = all_engines_triangle(database)
        assert all(r == results[0] for r in results)

    def test_on_skewed_graph(self):
        edges = zipf_graph(40, 160, skew=1.4, seed=12)
        _, database = triangle_from_graph(edges)
        results = all_engines_triangle(database)
        assert all(r == results[0] for r in results)

    pairs = st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=14)

    @given(pairs, pairs, pairs)
    @settings(max_examples=40, deadline=None)
    def test_on_arbitrary_relations(self, r, s, t):
        database = Database([
            Relation("R", ("A", "B"), r),
            Relation("S", ("B", "C"), s),
            Relation("T", ("A", "C"), t),
        ])
        results = all_engines_triangle(database)
        assert all(res == results[0] for res in results)


class TestOtherQueriesEnginesAgree:
    def test_four_cycle_all_plans_and_wcoj(self):
        query = cycle_query(4)
        database = Database([
            Relation(atom.relation, ("A", "B"),
                     erdos_renyi_graph(12, 40, seed=20 + i).tuples)
            for i, atom in enumerate(query.atoms)
        ])
        expected = nested_loop_join(query, database)
        assert generic_join(query, database) == expected
        assert leapfrog_triejoin(query, database) == expected
        for plan in all_left_deep_plans(query):
            assert execute_plan(plan, query, database).result == expected

    def test_loomis_whitney_engines_agree(self):
        query, database = loomis_whitney_random_instance(4, 30, seed=21)
        expected = nested_loop_join(query, database)
        assert generic_join(query, database) == expected
        assert leapfrog_triejoin(query, database) == expected
        assert best_left_deep_execution(query, database).result == expected

    def test_backtracking_with_derived_degree_constraints(self):
        edges = erdos_renyi_graph(25, 90, seed=22)
        query, database = triangle_from_graph(edges)
        dc = constraints_from_database(query, database, max_key_size=1)
        assert dc.is_acyclic() or True  # derived constraints may be cyclic
        if dc.is_acyclic():
            assert backtracking_join(query, database, dc) == generic_join(query, database)
        else:
            from repro.constraints.acyclify import acyclify
            weakened = acyclify(dc)
            assert backtracking_join(query, database, weakened) == generic_join(query, database)
