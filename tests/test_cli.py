"""Tests for the command-line experiment runner and engine subcommand."""

import pytest

from repro.cli import build_engine_parser, build_parser, main


class TestCli:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "loomis-whitney" in out

    def test_run_single_experiment(self, capsys):
        assert main(["triangle-bounds"]) == 0
        out = capsys.readouterr().out
        assert "[E3]" in out
        assert "(1/2,1/2,1/2)" in out

    def test_run_scaling_experiment_with_sizes(self, capsys):
        assert main(["triangle", "--sizes", "50", "100", "--family", "skew"]) == 0
        out = capsys.readouterr().out
        assert "[E4]" in out
        assert "best pairwise max intermediate" in out

    def test_run_tightness(self, capsys):
        assert main(["tightness"]) == 0
        assert "[E11]" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-an-experiment"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.scale == 150
        assert args.family == "skew"

    def test_package_version_exposed(self):
        import repro
        assert repro.__version__ == "1.0.0"


class TestEngineCli:
    def test_demo_run(self, capsys):
        assert main(["engine", "--demo", "triangle-skew", "--size", "60",
                     "--show", "0"]) == 0
        out = capsys.readouterr().out
        assert "engine session over 3 relations" in out
        assert "Q_triangle" in out
        assert "EngineStats" in out

    def test_repeat_reports_cache_hits(self, capsys):
        assert main(["engine", "--demo", "triangle-skew", "--size", "60",
                     "--repeat", "2", "--explain", "--show", "0"]) == 0
        out = capsys.readouterr().out
        assert "plan cache:     miss" in out
        assert "plan cache:     hit" in out
        assert "result_hits=1" in out

    def test_explicit_query_against_demo_data(self, capsys):
        assert main(["engine", "--demo", "triangle-skew", "--size", "40",
                     "-q", "P(X,Y,Z) :- R(X,Y), S(Y,Z), T(X,Z)",
                     "--mode", "leapfrog", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "P: 5 tuples" in out

    def test_csv_relations_and_query_file(self, tmp_path, capsys):
        edges = tmp_path / "edges.csv"
        edges.write_text("A,B\n1,2\n2,3\n1,3\n")
        queries = tmp_path / "queries.txt"
        queries.write_text("# transitive triangles\n"
                           "Q(A,B,C) :- E(A,B), E(B,C), E(A,C)\n")
        assert main(["engine", "--relation", f"E={edges}",
                     "--query-file", str(queries)]) == 0
        out = capsys.readouterr().out
        assert "E(3)" in out
        assert "Q: 1 tuples" in out  # only 1->2->3 closes with the chord 1->3

    def test_csv_mixed_type_relation_stays_fully_textual(self, tmp_path,
                                                         capsys):
        # One non-numeric cell anywhere keeps the WHOLE relation textual:
        # per-column coercion would leave an int column joining against a
        # str column, silently losing the textual triangle 1-2-3.
        edges = tmp_path / "edges.csv"
        edges.write_text("A,B\n1,2\nx,1\n2,3\n1,3\n")
        assert main(["engine", "--relation", f"E={edges}",
                     "-q", "Q(A,B,C) :- E(A,B), E(B,C), E(A,C)"]) == 0
        out = capsys.readouterr().out
        assert "E(4)" in out
        assert "Q: 1 tuples" in out
        assert "('1', '2', '3')" in out

    @pytest.mark.parametrize("mode", ["auto", "generic", "leapfrog"])
    def test_cross_relation_type_mismatch_is_a_clean_error(self, tmp_path,
                                                           capsys, mode):
        # An all-int relation joined with a textual one can never match
        # (and crashes the sorted engines); the CLI must report it upfront
        # in EVERY mode, not return a silently empty answer in some.
        ints = tmp_path / "ints.csv"
        ints.write_text("A,B\n1,2\n2,3\n")
        text = tmp_path / "text.csv"
        text.write_text("B,C\n2,x\n3,y\n")
        assert main(["engine", "--relation", f"R={ints}",
                     "--relation", f"S={text}",
                     "-q", "Q(A,B,C) :- R(A,B), S(B,C)",
                     "--mode", mode]) == 2
        assert "mixed value types" in capsys.readouterr().err

    def test_no_queries_errors(self, capsys):
        assert main(["engine"]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_bad_relation_spec_errors(self, capsys):
        assert main(["engine", "--relation", "nonsense", "-q", "R(A,B)"]) == 2
        assert "error" in capsys.readouterr().err

    def test_ragged_csv_row_errors_with_line_number(self, tmp_path, capsys):
        edges = tmp_path / "edges.csv"
        edges.write_text("A,B\n1,2\n3,4,5\n2,3\n")
        assert main(["engine", "--relation", f"E={edges}",
                     "-q", "E(A,B)"]) == 2
        err = capsys.readouterr().err
        assert ":3:" in err and "3 cells" in err

    def test_duplicate_relation_name_errors(self, tmp_path, capsys):
        edges = tmp_path / "edges.csv"
        edges.write_text("A,B\n1,2\n")
        assert main(["engine", "--relation", f"E={edges}",
                     "--relation", f"E={edges}", "-q", "E(A,B)"]) == 2
        assert "already registered" in capsys.readouterr().err

    def test_missing_relation_file_errors(self, capsys):
        assert main(["engine", "--relation", "E=/does/not/exist.csv",
                     "-q", "E(A,B)"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unparsable_query_errors(self, capsys):
        assert main(["engine", "--demo", "triangle-skew", "--size", "20",
                     "-q", "this is not datalog ("]) == 2
        assert "error" in capsys.readouterr().err

    def test_engine_parser_defaults(self):
        args = build_engine_parser().parse_args(["--demo", "lw4"])
        assert args.mode == "auto"
        assert args.repeat == 1
        assert args.limit is None
        assert args.format == "table"


class TestEngineCliRichQueries:
    def _edges(self, tmp_path):
        edges = tmp_path / "edges.csv"
        edges.write_text("A,B\n1,2\n2,3\n1,3\n3,4\n")
        return str(edges)

    def test_selection_and_constant_query(self, tmp_path, capsys):
        assert main(["engine", "--relation", f"E={self._edges(tmp_path)}",
                     "-q", "Q(A) :- E(A,B), E(B,3), A < B"]) == 0
        out = capsys.readouterr().out
        # Only A=1 qualifies: E(1,2), E(2,3), 1 < 2 (no edge enters 1).
        assert "Q: 1 tuples" in out
        assert "(1,)" in out

    def test_parse_error_reports_position(self, tmp_path, capsys):
        assert main(["engine", "--relation", f"E={self._edges(tmp_path)}",
                     "-q", "Q(A) :- E(A,B) junk"]) == 2
        err = capsys.readouterr().err
        assert "line 1, column 16" in err and "dangling" in err

    def test_json_format_prints_machine_readable_rows(self, tmp_path, capsys):
        import json

        assert main(["engine", "--relation", f"E={self._edges(tmp_path)}",
                     "-q", "Q(A, COUNT(*)) :- E(A,B)",
                     "--format", "json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["columns"] == ["A", "count"]
        assert sorted(payload["rows"]) == [[1, 2], [2, 1], [3, 1]]
        # The session chatter moved to stderr.
        assert "engine session" in captured.err
        assert "engine session" not in captured.out

    def test_csv_format_prints_header_and_all_rows(self, tmp_path, capsys):
        assert main(["engine", "--relation", f"E={self._edges(tmp_path)}",
                     "-q", "Q(A,B) :- E(A,B), A < B",
                     "--format", "csv"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert lines[0] == "A,B"
        assert sorted(lines[1:]) == ["1,2", "1,3", "2,3", "3,4"]

    def test_aggregate_type_error_gets_aggregate_hint(self, tmp_path, capsys):
        data = tmp_path / "s.csv"
        data.write_text("A,B\n1,x\n2,y\n")
        assert main(["engine", "--relation", f"E={data}",
                     "-q", "Q(SUM(B)) :- E(A,B)"]) == 2
        err = capsys.readouterr().err
        assert "aggregate" in err
        assert "do not join" not in err

    def test_explain_shows_pushdown_in_cli(self, tmp_path, capsys):
        assert main(["engine", "--relation", f"E={self._edges(tmp_path)}",
                     "-q", "Q(A) :- E(A,B), E(B,3), A < B",
                     "--explain", "--show", "0"]) == 0
        out = capsys.readouterr().out
        assert "pushed below join" in out
        assert "session stats:" in out

    def test_stats_line_reports_operations(self, capsys):
        assert main(["engine", "--demo", "triangle-skew", "--size", "60",
                     "--repeat", "2", "--show", "0"]) == 0
        out = capsys.readouterr().out
        runs = [line for line in out.splitlines() if "search nodes" in line]
        assert len(runs) == 2
        assert "[run 1/2]" in runs[0] and " ops (" in runs[0]
        # The repeat is a result-cache hit: zero execution work, not the
        # first run's stale tallies.
        assert "0 ops (0 search nodes)" in runs[1]
        assert "0 ops" not in runs[0]

    def test_trace_flag_writes_ndjson(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.ndjson"
        assert main(["engine", "--demo", "triangle-skew", "--size", "60",
                     "--trace", str(trace_path), "--show", "0"]) == 0
        out = capsys.readouterr().out
        assert f"spans to {trace_path}" in out
        records = [json.loads(line)
                   for line in trace_path.read_text().splitlines()]
        assert records
        names = {record["name"] for record in records}
        assert {"query", "parse", "execute", "deliver"} <= names

    def test_trace_to_unwritable_path_errors(self, tmp_path, capsys):
        assert main(["engine", "--demo", "triangle-skew", "--size", "60",
                     "--trace", str(tmp_path / "no" / "dir.ndjson"),
                     "--show", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_flag_prints_calibration_table(self, capsys):
        assert main(["engine", "--demo", "triangle-skew", "--size", "60",
                     "--profile", "--repeat", "2", "--show", "0"]) == 0
        out = capsys.readouterr().out
        assert out.count("calibration") == 1  # first round only
        assert "dispatched:" in out
        assert ("empirically best" in out
                or "did fewer operations" in out)

    def test_metrics_flag_prints_exposition(self, capsys):
        assert main(["engine", "--demo", "triangle-skew", "--size", "60",
                     "--metrics", "--show", "0"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in out
        assert "repro_queries_total 1" in out
        assert 'repro_dispatch_total{strategy=' in out

    def test_observability_chatter_stays_off_stdout_in_json(
            self, capsys):
        import json

        assert main(["engine", "--demo", "triangle-skew", "--size", "60",
                     "--metrics", "--profile", "--format", "json"]) == 0
        captured = capsys.readouterr()
        for line in captured.out.splitlines():
            json.loads(line)  # stdout stays machine-consumable
        assert "# TYPE" in captured.err
        assert "calibration" in captured.err

    def test_subscribe_reprints_results_after_each_delta(self, tmp_path,
                                                         capsys):
        import json

        r1 = tmp_path / "r1.csv"
        r1.write_text("a,b\n1,10\n2,20\n")
        r2 = tmp_path / "r2.csv"
        r2.write_text("a,c\n1,5\n2,6\n")
        assert main(["engine", "--relation", f"R1={r1}",
                     "--relation", f"R2={r2}",
                     "-q", "Q(A, SUM(B) AS total) :- R1(A,B), R2(A,C)",
                     "--subscribe", "--delta", "R1:+1,100",
                     "--delta", "R1:-1,10", "--format", "json"]) == 0
        captured = capsys.readouterr()
        payloads = [json.loads(line) for line in captured.out.splitlines()]
        assert [p["rows"] for p in payloads] == [
            [[1, 10], [2, 20]],
            [[1, 110], [2, 20]],
            [[1, 100], [2, 20]],
        ]
        assert "[subscribe] Q:" in captured.err
        assert "[delta] R1: +1 -0 (version 2)" in captured.err
        assert "[maintain] Q: incremental" in captured.err

    def test_delta_requires_subscribe(self, capsys):
        with pytest.raises(SystemExit):
            main(["engine", "--demo", "triangle-skew",
                  "--delta", "R:+1,2"])
        assert "--delta requires --subscribe" in capsys.readouterr().err

    def test_malformed_delta_errors(self, tmp_path, capsys):
        r1 = tmp_path / "r1.csv"
        r1.write_text("a,b\n1,10\n")
        assert main(["engine", "--relation", f"R1={r1}",
                     "-q", "Q(A) :- R1(A,B)", "--subscribe",
                     "--delta", "R1:1,2"]) == 2
        assert "must be '+v1,v2' or '-v1,v2'" in capsys.readouterr().err
