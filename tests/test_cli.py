"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "loomis-whitney" in out

    def test_run_single_experiment(self, capsys):
        assert main(["triangle-bounds"]) == 0
        out = capsys.readouterr().out
        assert "[E3]" in out
        assert "(1/2,1/2,1/2)" in out

    def test_run_scaling_experiment_with_sizes(self, capsys):
        assert main(["triangle", "--sizes", "50", "100", "--family", "skew"]) == 0
        out = capsys.readouterr().out
        assert "[E4]" in out
        assert "best pairwise max intermediate" in out

    def test_run_tightness(self, capsys):
        assert main(["tightness"]) == 0
        assert "[E11]" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-an-experiment"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.scale == 150
        assert args.family == "skew"

    def test_package_version_exposed(self):
        import repro
        assert repro.__version__ == "1.0.0"
